package lint

import (
	"go/ast"
	"go/types"
)

// AtomicField enforces the access discipline of prefdb:atomic fields.
//
// Grammar (comment on the struct field declaration):
//
//	// prefdb:atomic
//	    The field is shared across goroutines. If its type comes from
//	    sync/atomic, it may only be used through its methods or by
//	    address (never copied or reassigned); if it is a plain integer,
//	    every access must be an &field argument to a sync/atomic call.
//
// Catalog version counters, lifecycle-guard trip state and index probe
// counters carry this annotation; the analyzer turns a careless direct
// read — which the race detector only catches if a test happens to race —
// into a compile-gate failure. The companion prefdb:guarded-by annotation
// is enforced path-sensitively by the lockset analyzer.
var AtomicField = &Analyzer{
	Name: "atomicfield",
	Doc:  "fields annotated prefdb:atomic must be accessed via sync/atomic methods or &field in sync/atomic calls",
	Run:  runAtomicField,
}

type fieldRule struct {
	// atomicType is true when the field's type lives in sync/atomic and
	// method calls are the sanctioned access.
	atomicType bool
}

func runAtomicField(pass *Pass) error {
	rules := map[types.Object]fieldRule{}

	// Collect annotated fields from struct declarations.
	pass.WalkStack(func(n ast.Node, stack []ast.Node) {
		st, ok := n.(*ast.StructType)
		if !ok {
			return
		}
		for _, field := range st.Fields.List {
			for _, name := range field.Names {
				obj := pass.TypesInfo.Defs[name]
				if obj == nil {
					continue
				}
				if _, ok := pass.Marker(field.Pos(), "atomic", field.Doc, field.Comment); ok {
					_, pkgName := namedOf(obj.Type())
					rules[obj] = fieldRule{atomicType: pkgName == "atomic"}
				}
			}
		}
	})
	if len(rules) == 0 {
		return nil
	}

	pass.WalkStack(func(n ast.Node, stack []ast.Node) {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return
		}
		selection := pass.TypesInfo.Selections[sel]
		if selection == nil || selection.Kind() != types.FieldVal {
			return
		}
		rule, annotated := rules[selection.Obj()]
		if !annotated {
			return
		}
		if _, ok := pass.Marker(sel.Pos(), "atomic-ok"); ok {
			return
		}
		parent := ast.Node(nil)
		if len(stack) > 0 {
			parent = stack[len(stack)-1]
		}
		// x.f.g — this match is the x.f prefix of a longer selection; the
		// walk visits the outer selector separately.
		if outer, ok := parent.(*ast.SelectorExpr); ok && outer.X == sel {
			if rule.atomicType {
				return // x.f.Load() etc.: method access is the sanctioned form
			}
			// Selecting through a plain atomic field: treat as a read.
		}

		switch {
		case rule.atomicType:
			switch p := parent.(type) {
			case *ast.SelectorExpr:
				// handled above
			case *ast.UnaryExpr:
				if p.Op.String() != "&" {
					pass.Reportf(sel.Pos(), "atomic field %s used as a value; use its methods", sel.Sel.Name)
				}
			default:
				pass.Reportf(sel.Pos(),
					"atomic field %s copied or reassigned; sync/atomic values must not be moved after first use",
					sel.Sel.Name)
			}
		default:
			// Plain integer with prefdb:atomic: only &x.f directly inside a
			// sync/atomic call is allowed.
			if !isAtomicCallArg(pass, sel, stack) {
				pass.Reportf(sel.Pos(),
					"direct access to %s (annotated prefdb:atomic); use sync/atomic", sel.Sel.Name)
			}
		}
	})
	return nil
}

// typeNameOf renders the receiver type name of a field selection for
// diagnostics.
func typeNameOf(selection *types.Selection) string {
	name, _ := namedOf(selection.Recv())
	if name == "" {
		return "?"
	}
	return name
}

// isAtomicCallArg reports whether sel occurs as &sel directly in the
// argument list of a sync/atomic function call.
func isAtomicCallArg(pass *Pass, sel *ast.SelectorExpr, stack []ast.Node) bool {
	if len(stack) < 2 {
		return false
	}
	addr, ok := stack[len(stack)-1].(*ast.UnaryExpr)
	if !ok || addr.Op.String() != "&" || addr.X != sel {
		return false
	}
	call, ok := stack[len(stack)-2].(*ast.CallExpr)
	if !ok {
		return false
	}
	fun, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	pkgIdent, ok := fun.X.(*ast.Ident)
	if !ok {
		return false
	}
	if obj, ok := pass.TypesInfo.Uses[pkgIdent].(*types.PkgName); ok {
		return obj.Imported().Name() == "atomic"
	}
	return false
}
