package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ValueConv enforces the value-comparison conventions of the scoring hot
// paths (DESIGN.md §9):
//
//   - types.Value operands must not be compared with == or != — Value
//     holds a float64 payload, so struct equality diverges from SQL
//     equality (ints vs integral floats, NaN); use Value.Equal or
//     types.TupleEqual.
//   - map keys must not contain types.Value for the same reason (and
//     because hashing the struct bypasses the numeric normalization of
//     Value.Hash); key by Value.Hash/HashTuple with a TupleEqual confirm,
//     the way scoreMemo and the hash join do.
//   - an expr.Func literal that provides the vectorized Floats kernel must
//     also provide the scalar Eval — the kernel convention pairs them, and
//     the batch≡row equivalence suite assumes Eval is authoritative.
//
// The defining package (types) is exempt: the implementation of Equal,
// Hash and Compare legitimately inspects payloads. Deliberate exceptions
// elsewhere carry `// prefdb:valueconv-ok <reason>` on the line.
var ValueConv = &Analyzer{
	Name: "valueconv",
	Doc:  "no ==/map-key use of types.Value (use TupleEqual/Value.Hash); Func.Floats requires Func.Eval",
	Run:  runValueConv,
}

func runValueConv(pass *Pass) error {
	if pass.Pkg != nil && pass.Pkg.Name() == "types" {
		return nil
	}
	pass.WalkStack(func(n ast.Node, stack []ast.Node) {
		switch x := n.(type) {
		case *ast.BinaryExpr:
			if x.Op != token.EQL && x.Op != token.NEQ {
				return
			}
			ln, lp := NamedType(pass.TypesInfo, x.X)
			rn, rp := NamedType(pass.TypesInfo, x.Y)
			if ln == "Value" && lp == "types" && rn == "Value" && rp == "types" {
				if _, ok := pass.Marker(x.Pos(), "valueconv-ok"); ok {
					return
				}
				pass.Reportf(x.Pos(),
					"types.Value compared with %s; use Value.Equal/types.TupleEqual (struct equality breaks on numeric kinds)", x.Op)
			}
		case *ast.MapType:
			tv, ok := pass.TypesInfo.Types[x.Key]
			if !ok || !containsValueType(tv.Type, 0) {
				return
			}
			if _, ok := pass.Marker(x.Pos(), "valueconv-ok"); ok {
				return
			}
			pass.Reportf(x.Pos(),
				"map keyed by types.Value; key by Value.Hash/HashTuple with a TupleEqual confirm instead")
		case *ast.CompositeLit:
			name, pkg := NamedType(pass.TypesInfo, x)
			if name != "Func" || pkg != "expr" {
				return
			}
			hasEval, hasFloats := false, false
			for _, elt := range x.Elts {
				kv, ok := elt.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				if key, ok := kv.Key.(*ast.Ident); ok {
					switch key.Name {
					case "Eval":
						hasEval = true
					case "Floats":
						hasFloats = true
					}
				}
			}
			if hasFloats && !hasEval {
				pass.Reportf(x.Pos(),
					"expr.Func sets the Floats batch kernel without a scalar Eval; the kernel convention requires both paths")
			}
		}
	})
	return nil
}

// containsValueType reports whether t contains types.Value anywhere a map
// key could reach it (direct, array element, struct field).
func containsValueType(t types.Type, depth int) bool {
	if depth > 8 {
		return false
	}
	if name, pkg := namedOf(t); name == "Value" && pkg == "types" {
		return true
	}
	switch u := t.Underlying().(type) {
	case *types.Array:
		return containsValueType(u.Elem(), depth+1)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsValueType(u.Field(i).Type(), depth+1) {
				return true
			}
		}
	}
	return false
}
