// Fixture for the ctxloop analyzer: next/nextBatch pull loops must tick
// the lifecycle guard or carry a reasoned prefdb:nolifecycle annotation.
package ctxloop

type row struct{ v int }

type iter interface {
	next() (row, bool)
}

// pollTick is a stand-in for the executor's amortized cancellation tick;
// the analyzer matches it by type name and method name.
type pollTick struct{ n int }

func (t *pollTick) stop() bool { t.n++; return false }

// tickedIter polls the guard inside its pull loop: clean.
type tickedIter struct {
	in   iter
	tick pollTick
}

func (f *tickedIter) next() (row, bool) {
	for {
		if f.tick.stop() {
			return row{}, false
		}
		r, ok := f.in.next()
		if !ok {
			return row{}, false
		}
		if r.v > 0 {
			return r, true
		}
	}
}

// spinIter pulls unboundedly with no tick: flagged.
type spinIter struct{ in iter }

func (s *spinIter) next() (row, bool) { // want `pulls from an upstream iterator in a loop without a lifecycle tick`
	for {
		r, ok := s.in.next()
		if !ok {
			return row{}, false
		}
		if r.v > 0 {
			return r, true
		}
	}
}

// offsetIter's loop is bounded by the plan's offset; the annotation
// records the argument.
type offsetIter struct {
	in            iter
	skip, skipped int
}

// prefdb:nolifecycle bounded by the plan's OFFSET; the input iterator ticks
func (o *offsetIter) next() (row, bool) {
	for o.skipped < o.skip {
		if _, ok := o.in.next(); !ok {
			return row{}, false
		}
		o.skipped++
	}
	return o.in.next()
}

// bareIter annotates without saying why: flagged.
type bareIter struct{ in iter }

// prefdb:nolifecycle
func (l *bareIter) next() (row, bool) { // want `annotation on next needs a reason`
	for {
		if r, ok := l.in.next(); ok {
			return r, true
		}
	}
}
