// Fixture for the lockset analyzer: flow-sensitive lock discipline —
// guarded-by enforcement on every path, double-lock, unlock-without-lock,
// leak-at-return, loop neutrality, helper summaries and blocking drains.
package lockset

import "sync"

type table struct {
	mu    sync.Mutex
	rw    sync.RWMutex
	count int            // prefdb:guarded-by mu
	names map[string]int // prefdb:guarded-by rw
}

// goodDefer is the canonical shape: lock, defer unlock, access.
func goodDefer(t *table) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.count++
	return t.count
}

// goodExplicit unlocks explicitly on the single path.
func goodExplicit(t *table) {
	t.mu.Lock()
	t.count++
	t.mu.Unlock()
}

// goodEarlyReturn releases the lock on both the early and the fallthrough
// path — the branch merge must see mu released either way.
func goodEarlyReturn(t *table, stop bool) {
	t.mu.Lock()
	if stop {
		t.count = 0
		t.mu.Unlock()
		return
	}
	t.count++
	t.mu.Unlock()
}

// goodSwitch accesses under the lock across switch arms.
func goodSwitch(t *table, k int) {
	t.mu.Lock()
	switch k {
	case 1:
		t.count++
	default:
		t.count--
	}
	t.mu.Unlock()
}

// goodRead takes the read lock for the guarded map.
func goodRead(t *table) int {
	t.rw.RLock()
	defer t.rw.RUnlock()
	return t.names["x"]
}

// goodInfiniteLoop is lock-neutral per iteration.
func goodInfiniteLoop(t *table) {
	for {
		t.mu.Lock()
		t.count++
		t.mu.Unlock()
	}
}

// badUnguarded touches the guarded counter with no lock at all.
func badUnguarded(t *table) {
	t.count++ // want `access to table.count without holding mu`
}

// badBranch locks on only one branch: after the merge (intersection) the
// lock is not held, so both the access and the unlock are findings.
func badBranch(t *table, cond bool) {
	if cond {
		t.mu.Lock()
	}
	t.count++     // want `access to table.count without holding mu`
	t.mu.Unlock() // want `Unlock of t.mu, which is not held on this path`
}

// badDouble locks the same mutex twice on one path.
func badDouble(t *table) {
	t.mu.Lock()
	t.mu.Lock() // want `t.mu is locked again while already held`
	t.mu.Unlock()
}

// badUnlockOnly releases a mutex that was never acquired.
func badUnlockOnly(t *table) {
	t.mu.Unlock() // want `Unlock of t.mu, which is not held on this path`
}

// badLeak returns early while still holding the lock.
func badLeak(t *table, stop bool) {
	t.mu.Lock()
	if stop {
		return // want `t.mu is still held at return`
	}
	t.mu.Unlock()
}

// badDeferInLoop schedules the unlock at function exit, so iteration two
// double-locks.
func badDeferInLoop(t *table, n int) {
	for i := 0; i < n; i++ {
		t.mu.Lock() // want `t.mu is locked in a loop body with only a deferred unlock`
		defer t.mu.Unlock()
		t.count++
	}
}

// badHeldAcrossIterations forgets the unlock inside the loop body.
func badHeldAcrossIterations(t *table, n int) {
	for i := 0; i < n; i++ {
		t.mu.Lock() // want `t.mu is still held at the end of the loop body`
		t.count++
	}
}

// badUnlockInLoop releases an entry lock inside the body: the second
// iteration unlocks an unheld mutex.
func badUnlockInLoop(t *table, n int) {
	t.mu.Lock()
	for i := 0; i < n; i++ { // want `t.mu held at loop entry is released inside the loop body`
		t.count++
		t.mu.Unlock()
	}
}

// badMismatch pairs a read lock with a write unlock.
func badMismatch(t *table) {
	t.rw.RLock()
	t.rw.Unlock() // want `t.rw was acquired with RLock but released with Unlock`
}

// lockedHelper documents that callers hold t.mu; the seeded entry state
// makes the guarded access below clean.
// prefdb:locked mu
func (t *table) lockedHelper() {
	t.count++
}

// releaseHelper runs under t.mu and hands the release to the helper — the
// summary records the release so goodHandoff's return is clean.
// prefdb:locked mu
func (t *table) releaseHelper() {
	t.count = 0
	t.mu.Unlock()
}

// acquireHelper takes the lock on behalf of its caller.
// prefdb:lock-escapes mu
func (t *table) acquireHelper() {
	t.mu.Lock()
}

func goodHelperCall(t *table) {
	t.mu.Lock()
	t.lockedHelper()
	t.mu.Unlock()
}

func badHelperCall(t *table) {
	t.lockedHelper() // want `call to lockedHelper requires mu held at entry`
}

func goodHandoff(t *table) {
	t.mu.Lock()
	t.releaseHelper()
}

func goodAcquireHelper(t *table) {
	t.acquireHelper()
	t.count++
	t.mu.Unlock()
}

// badWaitUnderLock drains a WaitGroup while holding a mutex.
func badWaitUnderLock(t *table, wg *sync.WaitGroup) {
	t.mu.Lock()
	wg.Wait() // want `blocking WaitGroup.Wait while holding t.mu`
	t.mu.Unlock()
}

// goodWaitAfterUnlock releases before draining.
func goodWaitAfterUnlock(t *table, wg *sync.WaitGroup) {
	t.mu.Lock()
	t.count++
	t.mu.Unlock()
	wg.Wait()
}

// goodGoroutineBody: the spawned body starts with an empty lock set and
// is checked independently.
func goodGoroutineBody(t *table) {
	t.mu.Lock()
	go func() {
		t.mu.Lock()
		t.count++
		t.mu.Unlock()
	}()
	t.count++
	t.mu.Unlock()
}

// suppressed documents a sanctioned exception on the access line.
func suppressed(t *table) int {
	return t.count // prefdb:lockset-ok constructor path, no concurrent reader yet
}
