// Fixture for the atomicfield analyzer: annotated shared fields must be
// accessed through sync/atomic (or under their guarding mutex).
package atomicfield

import (
	"sync"
	"sync/atomic"
)

type counter struct {
	hits atomic.Int64 // prefdb:atomic
	raw  int64        // prefdb:atomic

	mu    sync.Mutex
	cache map[string]int // prefdb:guarded-by mu

	plain int // unannotated: free access
}

// good exercises every sanctioned access form.
func good(c *counter) int64 {
	c.hits.Add(1)
	atomic.AddInt64(&c.raw, 1)
	c.mu.Lock()
	c.cache["x"]++
	c.mu.Unlock()
	c.plain++
	return c.hits.Load() + atomic.LoadInt64(&c.raw)
}

// bad violates each rule once. (Unlocked access to the guarded-by cache
// field is the lockset analyzer's job now — see testdata/lockset.)
func bad(c *counter) int64 {
	v := c.raw  // want `direct access to raw`
	w := c.hits // want `atomic field hits copied or reassigned`
	_ = w
	return v
}

// suppressed documents a deliberate exception.
func suppressed(c *counter) int64 {
	return c.raw // prefdb:atomic-ok single-goroutine constructor, no reader yet
}
