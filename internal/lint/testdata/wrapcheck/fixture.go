// Fixture for the wrapcheck analyzer: typed errors are wrapped with %w
// and matched with errors.Is/As.
package wrapcheck

import (
	"errors"
	"fmt"
)

// ErrBudget is a sentinel in the repo's Err… convention.
var ErrBudget = errors.New("budget exhausted")

type guardFailure struct{ limit string }

func (g *guardFailure) Error() string { return g.limit }

// good matches through the errors package and wraps with %w.
func good(err error) error {
	if errors.Is(err, ErrBudget) {
		return nil
	}
	var gf *guardFailure
	if errors.As(err, &gf) {
		return nil
	}
	switch err.(type) { // type switches are exempt
	case *guardFailure:
		return nil
	}
	return fmt.Errorf("running query: %w", err)
}

// badCompare tests sentinel identity, which wrapping breaks.
func badCompare(err error) bool {
	return err == ErrBudget // want `sentinel error compared with ==`
}

// badAssert reaches for the concrete type directly.
func badAssert(err error) string {
	if gf, ok := err.(*guardFailure); ok { // want `type assertion on an error`
		return gf.limit
	}
	return ""
}

// badWrap formats the cause away.
func badWrap(err error) error {
	return fmt.Errorf("running query: %v", err) // want `formats an error without %w`
}

// sanctioned documents a deliberate chain break.
func sanctioned(err error) error {
	return fmt.Errorf("summary only: %v", err) // prefdb:nowrap boundary log line, chain ends here
}
