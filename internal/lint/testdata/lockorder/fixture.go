// Fixture for the lockorder analyzer: a 2-cycle between A.mu and B.mu
// (acquired in opposite orders by two functions) must be reported as a
// potential deadlock, while the acyclic A.mu -> C.mu edge — reached
// through a helper call — is hierarchy, not a finding.
package lockorder

import "sync"

type A struct{ mu sync.Mutex }
type B struct{ mu sync.Mutex }
type C struct{ mu sync.Mutex }

// ab nests B.mu under A.mu.
func ab(a *A, b *B) {
	a.mu.Lock()
	b.mu.Lock() // want `lock-order cycle \(potential deadlock\): lockorder.A.mu -> lockorder.B.mu -> lockorder.A.mu`
	b.mu.Unlock()
	a.mu.Unlock()
}

// ba nests A.mu under B.mu — the reversed edge that closes the cycle.
func ba(a *A, b *B) {
	b.mu.Lock()
	a.mu.Lock()
	a.mu.Unlock()
	b.mu.Unlock()
}

// lockC acquires C.mu; viaCall holds A.mu across the call, so the edge
// A.mu -> C.mu is found transitively through the call graph.
func lockC(c *C) {
	c.mu.Lock()
	c.mu.Unlock()
}

func viaCall(a *A, c *C) {
	a.mu.Lock()
	lockC(c)
	a.mu.Unlock()
}
