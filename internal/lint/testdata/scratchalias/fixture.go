// Fixture for the scratchalias analyzer: selection vectors and scratch
// buffers must not escape their operator without a copy.
package scratchalias

import "prefdb/internal/prel"

// segScratch is a stand-in for the executor's per-caller scratch; the
// analyzer matches it by type name.
type segScratch struct {
	sel    []int32
	scores []float64
}

type op struct {
	stash []int32
	scr   segScratch
}

// goodCopy hands out a defensive copy: clean.
func goodCopy(b *prel.Batch) []int32 {
	out := make([]int32, len(b.Sel))
	copy(out, b.Sel)
	return out
}

// goodBlessed writes derived values back into the scratch fields the
// contract reserves for them: clean.
func goodBlessed(o *op, b *prel.Batch) {
	o.scr.sel = append(o.scr.sel[:0], b.Sel...)
}

// badStash parks a live selection vector in operator state.
func badStash(o *op, b *prel.Batch) {
	o.stash = b.Sel // want `stored into field`
}

// badReturn leaks the raw selection vector to the caller, through a
// local-variable chain.
func badReturn(b *prel.Batch) []int32 {
	sel := b.Sel
	trimmed := sel[:1]
	return trimmed // want `returned raw`
}

// badSend ships scratch storage across a goroutine boundary.
func badSend(scr *segScratch, ch chan []float64) {
	ch <- scr.scores // want `sent on a channel`
}

// sanctioned documents a deliberate handoff.
func sanctioned(b *prel.Batch) []int32 {
	return b.Sel // prefdb:alias-ok caller consumes before the next pull, documented in its contract
}
