// Fixture for the scratchalias analyzer: selection vectors and scratch
// buffers must not escape their operator without a copy.
package scratchalias

import (
	"prefdb/internal/prel"
	"prefdb/internal/types"
)

// segScratch is a stand-in for the executor's per-caller scratch; the
// analyzer matches it by type name.
type segScratch struct {
	sel    []int32
	scores []float64
}

type op struct {
	stash []int32
	scr   segScratch
}

// goodCopy hands out a defensive copy: clean.
func goodCopy(b *prel.Batch) []int32 {
	out := make([]int32, len(b.Sel))
	copy(out, b.Sel)
	return out
}

// goodBlessed writes derived values back into the scratch fields the
// contract reserves for them: clean.
func goodBlessed(o *op, b *prel.Batch) {
	o.scr.sel = append(o.scr.sel[:0], b.Sel...)
}

// badStash parks a live selection vector in operator state.
func badStash(o *op, b *prel.Batch) {
	o.stash = b.Sel // want `stored into field`
}

// badReturn leaks the raw selection vector to the caller, through a
// local-variable chain.
func badReturn(b *prel.Batch) []int32 {
	sel := b.Sel
	trimmed := sel[:1]
	return trimmed // want `returned raw`
}

// badSend ships scratch storage across a goroutine boundary.
func badSend(scr *segScratch, ch chan []float64) {
	ch <- scr.scores // want `sent on a channel`
}

// sanctioned documents a deliberate handoff.
func sanctioned(b *prel.Batch) []int32 {
	return b.Sel // prefdb:alias-ok caller consumes before the next pull, documented in its contract
}

// Segment is a stand-in for the columnar store's segment; the analyzer
// matches the Tuple accessor by type name and the field by its marker.
type Segment struct {
	// prefdb:segment-view immutable for the store's lifetime
	tuples [][]int64
}

// Tuple hands out a shared immutable row view.
func (s *Segment) Tuple(i int) []int64 { return s.tuples[i] }

type viewOp struct {
	view []int64
}

// goodViewStash parks a segment view in operator state: the storage is
// immutable and shared by contract, so zero-copy aliasing is the point.
func goodViewStash(o *viewOp, s *Segment) {
	o.view = s.Tuple(3)
}

// goodViewReturn hands a view straight out: clean.
func goodViewReturn(s *Segment) []int64 { return s.Tuple(0) }

// goodViewSend ships a read-only view across a goroutine boundary: clean.
func goodViewSend(s *Segment, ch chan []int64) {
	ch <- s.Tuple(1)
}

// badViewWrite mutates shared immutable storage through the accessor.
func badViewWrite(s *Segment) {
	s.Tuple(0)[0] = 1 // want `segment view written through`
}

// badViewWriteChain mutates through a local-variable chain.
func badViewWriteChain(s *Segment) {
	v := s.Tuple(1)
	v[2] = 9 // want `segment view written through`
}

// badViewWriteField mutates through the marked field itself.
func badViewWriteField(s *Segment) {
	s.tuples[0][1] = 5 // want `segment view written through`
}

// colOp carries a field declared under the borrowed-vector marker; the
// analyzer matches it the same way cross-package code matches types.ColVec.
type colOp struct {
	// prefdb:col-view borrowed from the segment for the batch's lifetime
	ints []int64
	keep types.ColVec
}

// goodColRead reads through a borrowed column vector: clean — that is what
// the direct-on-column kernels do.
func goodColRead(b *prel.Batch) int64 { return b.Cols[0].Ints[3] }

// goodColStash parks borrowed vectors in operator state: borrowing is the
// point of the contract; only writes are forbidden.
func goodColStash(o *colOp, b *prel.Batch) { o.keep = b.Cols[0] }

// goodColSend ships a read-only vector across a goroutine boundary: clean.
func goodColSend(v types.ColVec, ch chan []float64) { ch <- v.Floats }

// badColWrite mutates segment storage through the batch's vector set.
func badColWrite(b *prel.Batch) {
	b.Cols[0].Ints[1] = 9 // want `borrowed column vector written through`
}

// badColWriteChain mutates through a local-variable-and-slice chain.
func badColWriteChain(v types.ColVec) {
	codes := v.Codes[1:]
	codes[0] = 7 // want `borrowed column vector written through`
}

// badColWriteMarked mutates through the marked field.
func badColWriteMarked(o *colOp) {
	o.ints[2] = 5 // want `borrowed column vector written through`
}

// sanctionedColWrite documents a vector that is fixture-local scratch, not
// a real borrow.
func sanctionedColWrite(v types.ColVec) {
	v.Bools[0] = true // prefdb:alias-ok vector built locally for the test, no segment behind it
}

// buildTab is a stand-in for a hash-join build table: it buffers state
// across batches, so it declares the build-side borrow contract — hashes
// and codes copied out of a window may be retained, the window itself not.
// prefdb:col-transient
type buildTab struct {
	hashes []uint64
	codes  []int32
	window []int64
	vec    types.ColVec
}

// goodBuildHashes retains values computed from the window, not the window:
// clean — this is exactly what the contract is for.
func goodBuildHashes(t *buildTab, b *prel.Batch) {
	for _, v := range b.Cols[0].Ints {
		t.hashes = append(t.hashes, uint64(v))
	}
}

// goodBuildCodes copies dictionary codes out of the borrowed vector: clean.
func goodBuildCodes(t *buildTab, v types.ColVec) {
	t.codes = append(t.codes[:0], v.Codes...)
}

// badBuildWindow parks a borrowed typed slice in build-table state; the
// producer invalidates it at its next batch.
func badBuildWindow(t *buildTab, b *prel.Batch) {
	t.window = b.Cols[0].Ints // want `prefdb:col-transient`
}

// badBuildVec parks the whole vector, through a local chain.
func badBuildVec(t *buildTab, b *prel.Batch) {
	cv := b.Cols[1]
	t.vec = cv // want `prefdb:col-transient`
}

// sanctionedBuildWindow documents a deliberate retention.
func sanctionedBuildWindow(t *buildTab, v types.ColVec) {
	t.window = v.Ints // prefdb:alias-ok vector pinned for the test's lifetime, no reset behind it
}
