// Fixture for the goleak analyzer: every go statement must show a join
// (WaitGroup Add/Done, joined channel, ctx.Done loop) or carry a
// reasoned prefdb:fire-and-forget marker.
package goleak

import (
	"context"
	"sync"
)

// goodWaitGroup pairs Add in the spawner with Done in the body.
func goodWaitGroup(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			work()
		}()
	}
	wg.Wait()
}

// goodContext loops on ctx.Done inside the body.
func goodContext(ctx context.Context) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			default:
				work()
			}
		}
	}()
}

// goodJoinedChannel: the body closes a channel the spawner receives from.
func goodJoinedChannel() {
	done := make(chan struct{})
	go func() {
		work()
		close(done)
	}()
	<-done
}

// goodSignalChannel: the body waits on a shutdown channel the spawner
// owns and closes.
func goodSignalChannel() {
	stop := make(chan struct{})
	go func() {
		<-stop
		work()
	}()
	close(stop)
}

// goodNamed joins a named function through a WaitGroup passed by pointer.
func goodNamed(wg *sync.WaitGroup) {
	wg.Add(1)
	go worker(wg)
}

func worker(wg *sync.WaitGroup) {
	defer wg.Done()
	work()
}

// badOrphan spawns with no join of any kind.
func badOrphan() {
	go func() { // want `no visible join`
		work()
	}()
}

// badNamed spawns a named function that never joins.
func badNamed() {
	go orphanWork() // want `no visible join`
}

func orphanWork() { work() }

// badDoneWithoutAdd: the body calls Done on a WaitGroup the spawner never
// Adds to — the pairing is asymmetric, so it does not count as a join.
func badDoneWithoutAdd(wg *sync.WaitGroup) {
	go func() { // want `no visible join`
		defer wg.Done()
		work()
	}()
}

// annotated documents a deliberate detached goroutine with a reason.
func annotated() {
	// prefdb:fire-and-forget best-effort cache warm, bounded by process exit
	go func() {
		work()
	}()
}

// badEmptyReason: the marker without a reason is itself a finding.
func badEmptyReason() {
	// prefdb:fire-and-forget
	go func() { // want `needs a reason`
		work()
	}()
}

func work() {}
