// Fixture for the valueconv analyzer: no struct equality or map keying on
// types.Value, and expr.Func kernels must keep a scalar Eval.
package valueconv

import (
	"prefdb/internal/expr"
	"prefdb/internal/types"
)

// goodEqual compares through the sanctioned helpers.
func goodEqual(a, b types.Value) bool {
	return a.Equal(b) && types.TupleEqual([]types.Value{a}, []types.Value{b})
}

// goodIndex keys by Value.Hash with an Equal confirm, the scoreMemo way.
type goodIndex struct {
	buckets map[uint64][]types.Value
}

func (g *goodIndex) has(v types.Value) bool {
	for _, c := range g.buckets[v.Hash()] {
		if c.Equal(v) {
			return true
		}
	}
	return false
}

// badEqual uses struct equality, which diverges on numeric kinds.
func badEqual(a, b types.Value) bool {
	return a == b // want `types.Value compared with ==`
}

// badKey hashes the struct representation, bypassing the numeric
// normalization of Value.Hash.
var badKey map[types.Value]int // want `map keyed by types.Value`

// badTupleKey hides the Value inside a composite key.
type pairKey struct {
	l, r types.Value
}

var badTupleKey map[pairKey]bool // want `map keyed by types.Value`

// goodFunc pairs the batch kernel with its authoritative scalar path.
var goodFunc = expr.Func{
	Name:    "halve",
	MinArgs: 1, MaxArgs: 1,
	Kind:   types.KindFloat,
	Eval:   func(args []types.Value) types.Value { return types.Float(args[0].AsFloat() / 2) },
	Floats: func(args []float64) float64 { return args[0] / 2 },
}

// badFunc ships only the vectorized path.
var badFunc = expr.Func{ // want `Floats batch kernel without a scalar Eval`
	Name:    "double",
	MinArgs: 1, MaxArgs: 1,
	Kind:   types.KindFloat,
	Floats: func(args []float64) float64 { return args[0] * 2 },
}

// sanctioned documents a deliberate exception.
func sanctioned(a, b types.Value) bool {
	return a != b // prefdb:valueconv-ok identity probe in a test asserting interning
}
