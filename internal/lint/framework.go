// Package lint is prefdb's custom static-analysis suite: eight analyzers
// that machine-check the invariants PRs 1–9 established by convention —
// atomic-only counter access, amortized lifecycle ticks in pull loops, no
// escaping selection-vector/scratch aliases, hashed Value equality,
// %w-wrapped typed errors, and (since the lockflow engine) flow-sensitive
// lock-set discipline, repo-global lock ordering, and goroutine-lifecycle
// joins. See DESIGN.md §11 for the invariant catalog and §16 for the
// concurrency annotation grammar and the pinned lock hierarchy.
//
// The package deliberately mirrors the golang.org/x/tools/go/analysis
// shapes (Analyzer, Pass, Diagnostic, want-comment fixtures) but is built
// on the standard library alone — prefdb has no module dependencies, and
// the analyzers only need parsed+typechecked syntax, which go/parser and
// go/types provide. Packages are enumerated and resolved with `go list`
// (load.go), so the driver sees exactly the files a build would.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// An Analyzer is one named invariant check over a typechecked package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and -run filters.
	Name string
	// Doc is the one-paragraph description shown by `prefdbvet -help`.
	Doc string
	// Run reports diagnostics through the pass. The error return is for
	// analyzer malfunction, not findings.
	Run func(*Pass) error
	// Begin, when set, resets analyzer-global state before a Run — for
	// analyzers that accumulate whole-program facts across packages.
	Begin func()
	// Finish, when set, reports whole-program findings after every package
	// has been analyzed (e.g. lockorder's cross-package cycle detection).
	Finish func(report func(Diagnostic))
}

// A Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// A Pass provides one analyzer with one typechecked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags *[]Diagnostic
	// lineComments maps file name → line → the comment text on that line,
	// built lazily for annotation lookups (suppressions, prefdb: markers).
	lineComments map[string]map[int]string
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// CommentOnLine returns the comment text (without the // or /* markers)
// attached to the given line of the file containing pos, or "".
func (p *Pass) CommentOnLine(pos token.Pos) string {
	position := p.Fset.Position(pos)
	if p.lineComments == nil {
		p.lineComments = map[string]map[int]string{}
		for _, f := range p.Files {
			name := p.Fset.Position(f.Pos()).Filename
			m := map[int]string{}
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					line := p.Fset.Position(c.Pos()).Line
					m[line] = strings.TrimSpace(strings.TrimPrefix(
						strings.TrimSuffix(strings.TrimPrefix(c.Text, "/*"), "*/"), "//"))
				}
			}
			p.lineComments[name] = m
		}
	}
	return p.lineComments[position.Filename][position.Line]
}

// Marker returns the arguments of a `prefdb:<name>` annotation attached to
// pos — on the same line, the line above, or in the given doc comment —
// and whether the annotation is present. An annotation with no arguments
// yields ("", true).
func (p *Pass) Marker(pos token.Pos, name string, doc ...*ast.CommentGroup) (string, bool) {
	needle := "prefdb:" + name
	try := func(text string) (string, bool) {
		for _, line := range strings.Split(text, "\n") {
			line = strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(line), "//"))
			if line == needle {
				return "", true
			}
			if strings.HasPrefix(line, needle+" ") {
				return strings.TrimSpace(strings.TrimPrefix(line, needle)), true
			}
		}
		return "", false
	}
	if args, ok := try(p.CommentOnLine(pos)); ok {
		return args, true
	}
	// The line above (annotation written on its own line).
	position := p.Fset.Position(pos)
	if m := p.lineComments[position.Filename]; m != nil {
		if args, ok := try(m[position.Line-1]); ok {
			return args, true
		}
	}
	for _, d := range doc {
		if d == nil {
			continue
		}
		if args, ok := try(d.Text()); ok {
			return args, true
		}
	}
	return "", false
}

// WalkStack traverses every file of the pass depth-first, calling fn with
// each node and the stack of its ancestors (outermost first, not
// including the node itself).
func (p *Pass) WalkStack(fn func(n ast.Node, stack []ast.Node)) {
	var stack []ast.Node
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			fn(n, stack)
			stack = append(stack, n)
			return true
		})
	}
}

// EnclosingFunc returns the innermost function declaration or literal in
// the stack, or nil.
func EnclosingFunc(stack []ast.Node) ast.Node {
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			return stack[i]
		}
	}
	return nil
}

// NamedType returns the name and package of an expression's type after
// stripping pointers and aliases, or ("", "") when it has no named type.
// Matching is by type name and *package name* (not import path) so the
// analyzers work identically on the real tree and on small test fixtures
// that declare stand-in types.
func NamedType(info *types.Info, e ast.Expr) (typeName, pkgName string) {
	tv, ok := info.Types[e]
	if !ok {
		return "", ""
	}
	return namedOf(tv.Type)
}

func namedOf(t types.Type) (typeName, pkgName string) {
	for {
		switch x := t.(type) {
		case *types.Pointer:
			t = x.Elem()
		case *types.Named:
			obj := x.Obj()
			pkg := ""
			if obj.Pkg() != nil {
				pkg = obj.Pkg().Name()
			}
			return obj.Name(), pkg
		case *types.Alias:
			t = types.Unalias(t)
		default:
			return "", ""
		}
	}
}

// IsErrorType reports whether t is the error interface or implements it
// (directly or through a pointer receiver).
func IsErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	errType := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	return types.Implements(t, errType) || types.Implements(types.NewPointer(t), errType)
}

// Run applies every analyzer to every package and returns the combined
// findings sorted by position.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	seen := map[string]bool{}
	for _, a := range analyzers {
		if a.Begin != nil {
			a.Begin()
		}
	}
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Pkg,
				TypesInfo: pkg.Info,
				diags:     &diags,
			}
			if err := a.Run(pass); err != nil {
				diags = append(diags, Diagnostic{
					Analyzer: a.Name,
					Message:  fmt.Sprintf("analyzer error: %v", err),
				})
			}
		}
	}
	for _, a := range analyzers {
		if a.Finish != nil {
			a.Finish(func(d Diagnostic) { diags = append(diags, d) })
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	// A base package and its test variant share non-test files: drop exact
	// duplicate findings.
	out := diags[:0]
	for _, d := range diags {
		key := d.String()
		if !seen[key] {
			seen[key] = true
			out = append(out, d)
		}
	}
	return out
}

// Analyzers returns the full prefdbvet suite.
func Analyzers() []*Analyzer {
	return []*Analyzer{AtomicField, CtxLoop, GoLeak, LockOrder, LockSet, ScratchAlias, ValueConv, WrapCheck}
}

// wantRe matches one expectation inside a `// want` comment.
var wantRe = regexp.MustCompile("`([^`]*)`|\"([^\"]*)\"")
