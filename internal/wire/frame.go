// Package wire defines prefdb's client/server protocol: length-prefixed
// frames carrying a compact binary encoding of statements, settings,
// result batches and errors, plus the client (Dial) that speaks it.
//
// Connection lifecycle:
//
//	client → FrameHello   (magic, version, auth token, session settings)
//	server → FrameWelcome (version, server name)    — or FrameError + close
//
// then any number of statement exchanges. A statement is one of
//
//	FrameQuery   (query id, kind, SQL, per-query settings)
//	FramePrepare (request id, SQL) → FramePrepared (statement id, plan)
//	FrameStmtRun (query id, statement id, kind, per-query settings)
//
// and the server answers a query-id-carrying request with exactly one of
//
//	FrameHeader, FrameBatch*, FrameEnd   — a result stream
//	FrameError                          — a failure
//
// FrameCancel (query id) may be sent at any time while a statement is in
// flight; the server cancels the statement's context and the stream
// terminates with a FrameError wrapping ErrCanceled. Results stream in
// bounded batches, so arbitrarily large result sets never materialize on
// the server; the embedded and remote APIs stay semantically identical,
// including the *GuardError structure of lifecycle failures.
package wire

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Protocol identification.
const (
	// Magic opens every Hello frame; a listener that reads anything else
	// drops the connection before allocating per-session state.
	Magic = "PFDB"
	// Version is the protocol version; both sides must match exactly.
	Version = 1
)

// MaxFrame bounds a single frame's payload (64 MiB) so a corrupt or
// hostile length prefix cannot trigger an unbounded allocation.
const MaxFrame = 64 << 20

// FrameType tags a frame.
type FrameType byte

// Client-originated frames.
const (
	// FrameHello opens a connection: magic, version, token, settings.
	FrameHello FrameType = 0x01
	// FrameQuery runs one SQL statement: qid, kind, sql, settings.
	FrameQuery FrameType = 0x02
	// FramePrepare compiles a statement server-side: request id, sql.
	FramePrepare FrameType = 0x03
	// FrameStmtRun executes a prepared statement: qid, stmt id, kind,
	// settings.
	FrameStmtRun FrameType = 0x04
	// FrameStmtClose deallocates a prepared statement: stmt id.
	FrameStmtClose FrameType = 0x05
	// FrameCancel cancels the in-flight statement: qid.
	FrameCancel FrameType = 0x06
)

// Server-originated frames.
const (
	// FrameWelcome acknowledges the handshake: version, server name.
	FrameWelcome FrameType = 0x81
	// FrameHeader opens a result stream: qid, relation schema, plan,
	// message.
	FrameHeader FrameType = 0x82
	// FrameBatch carries up to BatchRows result rows: qid, rows.
	FrameBatch FrameType = 0x83
	// FrameEnd closes a result stream: qid, stats.
	FrameEnd FrameType = 0x84
	// FrameError fails a request: qid, structured error.
	FrameError FrameType = 0x85
	// FramePrepared acknowledges FramePrepare: request id, stmt id, plan.
	FramePrepared FrameType = 0x86
)

// StmtKind selects the server-side execution entry point, preserving each
// embedded method's exact semantics (e.g. QueryContext rejecting DDL).
type StmtKind byte

const (
	// KindExec maps to Session.ExecContext.
	KindExec StmtKind = iota
	// KindQuery maps to Session.QueryContext (materialized server-side,
	// streamed to the client in batches).
	KindQuery
	// KindStream maps to Session.StreamContext (never materialized).
	KindStream
)

// BatchRows is the number of result rows per FrameBatch — small enough to
// bound per-query server buffering, large enough to amortize framing.
const BatchRows = 256

// WriteFrame writes one frame: type byte, big-endian uint32 payload
// length, payload.
func WriteFrame(w io.Writer, t FrameType, payload []byte) error {
	if len(payload) > MaxFrame {
		return fmt.Errorf("wire: frame payload %d exceeds limit %d", len(payload), MaxFrame)
	}
	var hdr [5]byte
	hdr[0] = byte(t)
	binary.BigEndian.PutUint32(hdr[1:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one frame, rejecting payloads above MaxFrame.
func ReadFrame(r io.Reader) (FrameType, []byte, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[1:])
	if n > MaxFrame {
		return 0, nil, fmt.Errorf("wire: frame payload %d exceeds limit %d", n, MaxFrame)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	return FrameType(hdr[0]), payload, nil
}
