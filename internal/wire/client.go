// Client side of the protocol: Dial opens a connection, handshakes, and
// returns a Client whose ExecContext / QueryContext / StreamContext /
// Prepare mirror the embedded engine.Session surface, so prefdb.Dial can
// hand applications the same Session interface as prefdb.NewSession.
//
// Concurrency model: one statement is in flight per connection at a time —
// a statement mutex is held from the request frame until the terminating
// End/Error frame is consumed, so concurrent callers serialize (open more
// connections for parallelism; the server multiplexes sessions, not a
// connection). Mid-query cancellation stays possible because frame writes
// have their own mutex: a watcher goroutine sends FrameCancel the moment
// the statement's context fires, and the server answers by failing the
// stream with ErrCanceled.
package wire

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"

	"prefdb/internal/engine"
	"prefdb/internal/exec"
	"prefdb/internal/prel"
	"prefdb/internal/schema"
	"prefdb/internal/types"
)

// ErrClientClosed reports use of a closed client connection.
var ErrClientClosed = errors.New("wire: client is closed")

// errProfileRemote rejects WithProfile on a network session: the binding
// references a live in-process profile store and cannot travel.
var errProfileRemote = errors.New("wire: WithProfile is embedded-only; resolve profile preferences client-side and send them in the PREFERRING clause")

// DialOption configures a client connection.
type DialOption func(*dialConfig)

type dialConfig struct {
	token    string
	defaults []engine.QueryOption
}

// WithToken authenticates the connection against a server started with an
// auth token.
func WithToken(token string) DialOption {
	return func(c *dialConfig) { c.token = token }
}

// WithSessionDefaults sets the remote session's default options, the
// middle layer of the precedence chain exactly as in DB.NewSession.
func WithSessionDefaults(opts ...engine.QueryOption) DialOption {
	return func(c *dialConfig) { c.defaults = opts }
}

// Client is a connection to a prefdb server; it mirrors the embedded
// session surface. Safe for concurrent use (statements serialize).
type Client struct {
	conn net.Conn

	wmu sync.Mutex // serializes frame writes (requests and cancels)

	mu     sync.Mutex // serializes statements; held while a stream is open
	qid    uint64     // prefdb:guarded-by mu
	closed bool       // prefdb:guarded-by mu
}

// Dial connects to a prefdb server and performs the handshake.
func Dial(addr string, opts ...DialOption) (*Client, error) {
	var cfg dialConfig
	for _, o := range opts {
		o(&cfg)
	}
	settings := engine.CollectSettings(cfg.defaults...)
	if settings.HasProfile {
		return nil, errProfileRemote
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Client{conn: conn}
	var e Encoder
	e.String(Magic)
	e.Uvarint(Version)
	e.String(cfg.token)
	e.Settings(settings)
	if err := WriteFrame(conn, FrameHello, e.Bytes()); err != nil {
		conn.Close()
		return nil, err
	}
	t, payload, err := ReadFrame(conn)
	if err != nil {
		conn.Close()
		return nil, err
	}
	d := NewDecoder(payload)
	switch t {
	case FrameWelcome:
		if v := d.Uvarint(); v != Version {
			conn.Close()
			return nil, fmt.Errorf("wire: server protocol version %d, client %d", v, Version)
		}
		_ = d.String() // server name, informational
		return c, d.Err()
	case FrameError:
		d.Uvarint() // qid, zero during handshake
		err := d.Error()
		conn.Close()
		return nil, err
	default:
		conn.Close()
		return nil, fmt.Errorf("wire: unexpected handshake frame %#x", byte(t))
	}
}

// Close closes the connection; in-flight statements fail with a transport
// error.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	return c.conn.Close()
}

// writeFrame serializes one frame write against concurrent cancels.
func (c *Client) writeFrame(t FrameType, payload []byte) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	return WriteFrame(c.conn, t, payload)
}

// ExecContext executes any statement (DDL, DML or query) on the remote
// session, mirroring Session.ExecContext.
func (c *Client) ExecContext(ctx context.Context, sql string, opts ...engine.QueryOption) (*engine.Result, error) {
	return c.roundTrip(ctx, KindExec, sql, opts)
}

// QueryContext executes a preferential query on the remote session,
// mirroring Session.QueryContext.
func (c *Client) QueryContext(ctx context.Context, sql string, opts ...engine.QueryOption) (*engine.Result, error) {
	return c.roundTrip(ctx, KindQuery, sql, opts)
}

// StreamContext executes any statement on the remote session, streaming
// result rows batch by batch; rows are decoded lazily, so a large result
// materializes on neither side.
func (c *Client) StreamContext(ctx context.Context, sql string, opts ...engine.QueryOption) (engine.Rows, error) {
	return c.stream(ctx, func(qid uint64, settings engine.Settings) []byte {
		var e Encoder
		e.Uvarint(qid)
		e.Byte(byte(KindStream))
		e.String(sql)
		e.Settings(settings)
		return e.Bytes()
	}, FrameQuery, opts)
}

// roundTrip runs one statement and materializes the streamed result.
func (c *Client) roundTrip(ctx context.Context, kind StmtKind, sql string, opts []engine.QueryOption) (*engine.Result, error) {
	rows, err := c.stream(ctx, func(qid uint64, settings engine.Settings) []byte {
		var e Encoder
		e.Uvarint(qid)
		e.Byte(byte(kind))
		e.String(sql)
		e.Settings(settings)
		return e.Bytes()
	}, FrameQuery, opts)
	if err != nil {
		return nil, err
	}
	return materialize(rows)
}

// materialize drains a stream into a Result, the shape embedded callers
// get from QueryContext.
func materialize(rows engine.Rows) (*engine.Result, error) {
	cr := rows.(*clientRows)
	var rel *prel.PRelation
	if cr.rel != nil {
		rel = prel.New(cr.rel.Schema)
		for rows.Next() {
			row := rows.Row()
			tuple := make([]types.Value, len(row.Tuple))
			copy(tuple, row.Tuple)
			rel.Append(prel.Row{Tuple: tuple, SC: row.SC})
		}
	} else {
		for rows.Next() {
		}
	}
	if err := rows.Err(); err != nil {
		rows.Close()
		return nil, err
	}
	if err := rows.Close(); err != nil {
		return nil, err
	}
	return &engine.Result{Rel: rel, Stats: rows.Stats(), Plan: rows.Plan(), Message: rows.Message()}, nil
}

// stream sends a statement request and opens its result stream. On
// success it returns holding c.mu: the connection carries one statement
// at a time, and the lock is released by clientRows.finish when the
// stream ends (End/Error frame, failure, or Close).
// prefdb:lock-escapes mu
func (c *Client) stream(ctx context.Context, build func(qid uint64, s engine.Settings) []byte, frame FrameType, opts []engine.QueryOption) (engine.Rows, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	settings := engine.CollectSettings(opts...)
	if settings.HasProfile {
		return nil, errProfileRemote
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClientClosed
	}
	c.qid++
	qid := c.qid
	if err := c.writeFrame(frame, build(qid, settings)); err != nil {
		c.mu.Unlock()
		return nil, err
	}
	r := &clientRows{c: c, qid: qid, watchDone: make(chan struct{})}
	// The watcher turns a context fire into a cancel frame; the server
	// answers by failing the stream with ErrCanceled, which ends it.
	go func() {
		select {
		case <-ctx.Done():
			e := &Encoder{}
			e.Uvarint(qid)
			_ = c.writeFrame(FrameCancel, e.Bytes())
		case <-r.watchDone:
		}
	}()
	// First frame decides: header (stream opens) or error.
	ft, payload, err := ReadFrame(c.conn)
	if err != nil {
		r.finish()
		return nil, err
	}
	d := NewDecoder(payload)
	switch ft {
	case FrameHeader:
		d.Uvarint() // qid echo
		if d.Bool() {
			r.rel = &headerRel{Schema: d.Schema()}
		}
		r.plan = d.String()
		r.message = d.String()
		if err := d.Err(); err != nil {
			r.finish()
			return nil, err
		}
		return r, nil
	case FrameError:
		d.Uvarint()
		err := d.Error()
		r.finish()
		return nil, err
	default:
		r.finish()
		return nil, fmt.Errorf("wire: unexpected frame %#x opening result", byte(ft))
	}
}

// headerRel carries the decoded result schema.
type headerRel struct {
	Schema *schema.Schema
}

// clientRows is the client-side Rows implementation: it decodes batches
// lazily from the connection and terminates on End or Error.
type clientRows struct {
	c   *Client
	qid uint64

	rel     *headerRel
	plan    string
	message string

	batch   []byte // undecoded remainder of the current batch frame
	pending int    // rows left in the current batch frame
	dec     *Decoder
	buf     []types.Value

	cur      prel.Row
	stats    exec.Stats
	err      error
	done     bool
	finished bool

	watchDone chan struct{}
}

// Next advances to the next row; false at exhaustion or failure.
// prefdb:locked c.mu
func (r *clientRows) Next() bool {
	if r.done {
		return false
	}
	for r.pending == 0 {
		if !r.readFrame() {
			return false
		}
	}
	r.pending--
	row, buf := r.dec.Row(r.buf)
	r.buf = buf
	if err := r.dec.Err(); err != nil {
		r.fail(err)
		return false
	}
	r.cur = row
	return true
}

// readFrame pulls the next result frame, returning false when the stream
// ended (End, Error or transport failure).
// prefdb:locked c.mu
func (r *clientRows) readFrame() bool {
	t, payload, err := ReadFrame(r.c.conn)
	if err != nil {
		r.fail(err)
		return false
	}
	d := NewDecoder(payload)
	switch t {
	case FrameBatch:
		d.Uvarint() // qid echo
		r.pending = int(d.Uvarint())
		if err := d.Err(); err != nil {
			r.fail(err)
			return false
		}
		r.dec = d
		if r.pending == 0 {
			return true // empty batch: keep reading
		}
		return true
	case FrameEnd:
		d.Uvarint()
		r.stats = d.Stats()
		if err := d.Err(); err != nil {
			r.fail(err)
			return false
		}
		r.done = true
		r.finish()
		return false
	case FrameError:
		d.Uvarint()
		r.fail(d.Error())
		return false
	default:
		r.fail(fmt.Errorf("wire: unexpected frame %#x in result stream", byte(t)))
		return false
	}
}

// fail terminates the stream with err.
// prefdb:locked c.mu
func (r *clientRows) fail(err error) {
	r.err = err
	r.done = true
	r.finish()
}

// finish releases the statement slot and stops the cancel watcher; it is
// idempotent. This is the delayed unlock for the c.mu that stream()
// returned holding.
// prefdb:locked c.mu
func (r *clientRows) finish() {
	if r.finished {
		return
	}
	r.finished = true
	close(r.watchDone)
	r.c.mu.Unlock()
}

// Row returns the current row; valid only until the next call to Next.
func (r *clientRows) Row() prel.Row { return r.cur }

// Columns returns the result header (relation columns plus score, conf).
func (r *clientRows) Columns() []string {
	if r.rel == nil {
		return nil
	}
	s := r.rel.Schema
	out := make([]string, 0, len(s.Columns)+2)
	for _, c := range s.Columns {
		out = append(out, c.QualifiedName())
	}
	return append(out, "score", "conf")
}

// Schema returns the result relation's schema (nil for DDL/DML).
func (r *clientRows) Schema() *schema.Schema {
	if r.rel == nil {
		return nil
	}
	return r.rel.Schema
}

// Err returns the stream failure, nil after a clean drain.
func (r *clientRows) Err() error { return r.err }

// Close abandons the stream: it cancels the server-side statement if rows
// remain and drains the connection to the terminating frame so the next
// statement starts on a clean boundary. Idempotent; returns Err.
// prefdb:locked c.mu
func (r *clientRows) Close() error {
	if r.done {
		return r.err
	}
	// Ask the server to stop, then swallow frames until it does.
	e := &Encoder{}
	e.Uvarint(r.qid)
	if err := r.c.writeFrame(FrameCancel, e.Bytes()); err != nil {
		r.fail(err)
		return nil // transport gone; Err would report the write failure
	}
	for !r.done {
		r.pending = 0
		r.readFrame()
	}
	// A cancel we initiated is a clean close, not a statement failure.
	if r.err != nil && errors.Is(r.err, exec.ErrCanceled) {
		r.err = nil
	}
	return r.err
}

// Stats returns the execution counters reported by the server's End frame
// (zero until the stream ends).
func (r *clientRows) Stats() exec.Stats { return r.stats }

// Plan returns the executed plan in explain format.
func (r *clientRows) Plan() string { return r.plan }

// Message describes the effect of DDL/DML statements.
func (r *clientRows) Message() string { return r.message }

// Prepare compiles a statement server-side; the returned Stmt shares the
// connection's one-statement-at-a-time discipline.
func (c *Client) Prepare(sql string) (*ClientStmt, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, ErrClientClosed
	}
	c.qid++
	reqID := c.qid
	var e Encoder
	e.Uvarint(reqID)
	e.String(sql)
	if err := c.writeFrame(FramePrepare, e.Bytes()); err != nil {
		return nil, err
	}
	t, payload, err := ReadFrame(c.conn)
	if err != nil {
		return nil, err
	}
	d := NewDecoder(payload)
	switch t {
	case FramePrepared:
		d.Uvarint() // request echo
		id := d.Uvarint()
		plan := d.String()
		if err := d.Err(); err != nil {
			return nil, err
		}
		return &ClientStmt{c: c, id: id, plan: plan}, nil
	case FrameError:
		d.Uvarint()
		return nil, d.Error()
	default:
		return nil, fmt.Errorf("wire: unexpected frame %#x answering prepare", byte(t))
	}
}

// ClientStmt is a server-side prepared statement handle.
type ClientStmt struct {
	c    *Client
	id   uint64
	plan string
}

// Plan returns the optimized plan in explain format.
func (s *ClientStmt) Plan() string { return s.plan }

// RunContext executes the prepared statement, materializing the result;
// per-run options override the session defaults exactly as embedded.
func (s *ClientStmt) RunContext(ctx context.Context, opts ...engine.QueryOption) (*engine.Result, error) {
	rows, err := s.StreamContext(ctx, opts...)
	if err != nil {
		return nil, err
	}
	return materialize(rows)
}

// StreamContext executes the prepared statement, streaming result rows.
func (s *ClientStmt) StreamContext(ctx context.Context, opts ...engine.QueryOption) (engine.Rows, error) {
	return s.c.stream(ctx, func(qid uint64, settings engine.Settings) []byte {
		var e Encoder
		e.Uvarint(qid)
		e.Uvarint(s.id)
		e.Byte(byte(KindStream))
		e.Settings(settings)
		return e.Bytes()
	}, FrameStmtRun, opts)
}

// Close deallocates the server-side statement.
func (s *ClientStmt) Close() error {
	s.c.mu.Lock()
	defer s.c.mu.Unlock()
	if s.c.closed {
		return nil
	}
	var e Encoder
	e.Uvarint(s.id)
	return s.c.writeFrame(FrameStmtClose, e.Bytes())
}
