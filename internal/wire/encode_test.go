package wire

import (
	"bytes"
	"errors"
	"math"
	"testing"
	"time"

	"prefdb/internal/engine"
	"prefdb/internal/exec"
	"prefdb/internal/prel"
	"prefdb/internal/schema"
	"prefdb/internal/types"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{nil, {}, {0x01}, bytes.Repeat([]byte{0xAB}, 1<<16)}
	for i, p := range payloads {
		if err := WriteFrame(&buf, FrameType(i+1), p); err != nil {
			t.Fatal(err)
		}
	}
	for i, p := range payloads {
		ft, got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if ft != FrameType(i+1) {
			t.Fatalf("frame %d: type %#x, want %#x", i, ft, i+1)
		}
		if !bytes.Equal(got, p) {
			t.Fatalf("frame %d: payload %d bytes, want %d", i, len(got), len(p))
		}
	}
}

func TestFrameOversize(t *testing.T) {
	if err := WriteFrame(new(bytes.Buffer), FrameQuery, make([]byte, MaxFrame+1)); err == nil {
		t.Fatal("oversize write accepted")
	}
	var buf bytes.Buffer
	buf.Write([]byte{byte(FrameQuery), 0xFF, 0xFF, 0xFF, 0xFF})
	if _, _, err := ReadFrame(&buf); err == nil {
		t.Fatal("oversize length prefix accepted")
	}
}

func TestValueRoundTrip(t *testing.T) {
	vals := []types.Value{
		types.Null(),
		types.Int(0), types.Int(-1), types.Int(math.MaxInt64), types.Int(math.MinInt64),
		types.Float(0), types.Float(math.Copysign(0, -1)), types.Float(3.141592653589793),
		types.Float(math.Inf(1)), types.Float(math.SmallestNonzeroFloat64),
		types.Str(""), types.Str("héllo\x00world"),
		types.Bool(true), types.Bool(false),
	}
	var e Encoder
	for _, v := range vals {
		e.Value(v)
	}
	d := NewDecoder(e.Bytes())
	for i, want := range vals {
		got := d.Value()
		if !got.Equal(want) || got.Kind() != want.Kind() {
			t.Fatalf("value %d: got %v (kind %d), want %v (kind %d)", i, got, got.Kind(), want, want.Kind())
		}
	}
	if d.Err() != nil {
		t.Fatal(d.Err())
	}
}

func TestFloatBitExact(t *testing.T) {
	// NaN and negative zero must survive bit-for-bit: Equal-style
	// comparisons cannot see the difference, the bit pattern can.
	for _, f := range []float64{math.NaN(), math.Copysign(0, -1), math.Nextafter(1, 2)} {
		var e Encoder
		e.Float(f)
		got := NewDecoder(e.Bytes()).Float()
		if math.Float64bits(got) != math.Float64bits(f) {
			t.Fatalf("float bits %016x round-tripped to %016x", math.Float64bits(f), math.Float64bits(got))
		}
	}
}

func TestRowSchemaRoundTrip(t *testing.T) {
	rows := []prel.Row{
		{Tuple: []types.Value{types.Int(1), types.Str("a")}, SC: types.NewSC(0.5, 0.9)},
		{Tuple: []types.Value{types.Int(2), types.Null()}, SC: types.Bottom()},
		{Tuple: nil, SC: types.NewSC(1, 1)},
	}
	sch := &schema.Schema{
		Columns: []schema.Column{
			{Table: "movies", Name: "id", Kind: types.KindInt},
			{Table: "movies", Name: "title", Kind: types.KindString},
		},
		Key: []int{0},
	}
	var e Encoder
	e.Schema(sch)
	for _, r := range rows {
		e.Row(r)
	}
	d := NewDecoder(e.Bytes())
	gotSch := d.Schema()
	if gotSch == nil || len(gotSch.Columns) != 2 || gotSch.Columns[1].QualifiedName() != sch.Columns[1].QualifiedName() ||
		len(gotSch.Key) != 1 || gotSch.Key[0] != 0 {
		t.Fatalf("schema round trip: %+v", gotSch)
	}
	var buf []types.Value
	for i, want := range rows {
		var got prel.Row
		got, buf = d.Row(buf)
		if len(got.Tuple) != len(want.Tuple) {
			t.Fatalf("row %d width %d, want %d", i, len(got.Tuple), len(want.Tuple))
		}
		for j := range got.Tuple {
			if !got.Tuple[j].Equal(want.Tuple[j]) {
				t.Fatalf("row %d col %d: %v, want %v", i, j, got.Tuple[j], want.Tuple[j])
			}
		}
		if got.SC.IsBottom() != want.SC.IsBottom() || got.SC.Score != want.SC.Score || got.SC.Conf != want.SC.Conf {
			t.Fatalf("row %d SC %+v, want %+v", i, got.SC, want.SC)
		}
	}
	if d.Err() != nil {
		t.Fatal(d.Err())
	}
}

func TestSettingsRoundTrip(t *testing.T) {
	cases := []engine.Settings{
		{}, // nothing set
		engine.CollectSettings(engine.WithMode(engine.ModeNative)),
		engine.CollectSettings(
			engine.WithMode(engine.ModeFtP), engine.WithWorkers(7),
			engine.WithTimeout(90*time.Second), engine.WithMaxRows(10),
			engine.WithMaxCells(20), engine.WithMemoryBudget(1<<30),
			engine.WithScoreCache(engine.CacheOff), engine.WithBatch(engine.BatchOff),
			engine.WithBatchSize(512), engine.WithColstore(engine.ColstoreOn),
		),
		// Explicit zero values must stay distinguishable from absent ones.
		engine.CollectSettings(engine.WithWorkers(0), engine.WithScoreCache(engine.CacheAuto)),
	}
	for i, want := range cases {
		var e Encoder
		e.Settings(want)
		got := NewDecoder(e.Bytes()).Settings()
		if got != want {
			t.Fatalf("case %d:\n  got  %+v\n  want %+v", i, got, want)
		}
	}
	// HasProfile travels as a mask bit with no payload.
	var e Encoder
	s := engine.Settings{HasProfile: true}
	e.Settings(s)
	if got := NewDecoder(e.Bytes()).Settings(); !got.HasProfile {
		t.Fatal("HasProfile lost in transit")
	}
}

func TestStatsRoundTrip(t *testing.T) {
	want := exec.Stats{
		RowsScanned: 1, TuplesMaterialized: 2, CellsMaterialized: 3,
		NativeCalls: 4, IndexProbes: 5, PreferEvals: 6,
		ScoreRelationRows: 7, ScoreEvals: 8, CacheHits: 9, CacheMisses: 10,
		Batches: 11, SegmentsScanned: 12, SegmentsSkipped: 13,
	}
	var e Encoder
	e.Stats(want)
	if got := NewDecoder(e.Bytes()).Stats(); got != want {
		t.Fatalf("stats:\n  got  %+v\n  want %+v", got, want)
	}
	// Forward compatibility: a capture with extra trailing counters decodes.
	e2 := Encoder{}
	e2.Uvarint(15)
	for i := 0; i < 15; i++ {
		e2.Varint(int64(i))
	}
	d := NewDecoder(e2.Bytes())
	got := d.Stats()
	if d.Err() != nil || got.RowsScanned != 0 || got.SegmentsSkipped != 12 {
		t.Fatalf("forward decode: %+v err %v", got, d.Err())
	}
}

func TestErrorRoundTrip(t *testing.T) {
	guard := func() error {
		return exec.NewGuardError(exec.LimitRows, 10, 11, exec.Stats{RowsScanned: 42})
	}
	var e Encoder
	e.Error(guard())
	got := NewDecoder(e.Bytes()).Error()
	if !errors.Is(got, exec.ErrResourceExhausted) {
		t.Fatalf("decoded guard error %v does not match ErrResourceExhausted", got)
	}
	var ge *exec.GuardError
	if !errors.As(got, &ge) {
		t.Fatalf("decoded error %v is not a *GuardError", got)
	}
	if ge.Limit != exec.LimitRows || ge.Budget != 10 || ge.Observed != 11 || ge.Stats.RowsScanned != 42 {
		t.Fatalf("guard fields lost: %+v", ge)
	}

	var e2 Encoder
	e2.Error(errors.New("plain failure"))
	got2 := NewDecoder(e2.Bytes()).Error()
	if got2 == nil || got2.Error() != "plain failure" {
		t.Fatalf("plain error round trip: %v", got2)
	}
}

func TestDecoderTruncation(t *testing.T) {
	// Every read primitive must fail cleanly, not panic, on short input.
	full := func() []byte {
		var e Encoder
		e.Uvarint(300)
		e.Varint(-5)
		e.Float(1.5)
		e.String("hello")
		e.Value(types.Str("world"))
		e.SC(types.NewSC(0.1, 0.2))
		e.Row(prel.Row{Tuple: []types.Value{types.Int(9)}, SC: types.Bottom()})
		e.Schema(&schema.Schema{Columns: []schema.Column{{Name: "x", Kind: types.KindInt}}})
		return e.Bytes()
	}()
	for cut := 0; cut < len(full); cut++ {
		d := NewDecoder(full[:cut])
		d.Uvarint()
		d.Varint()
		d.Float()
		_ = d.String()
		d.Value()
		d.SC()
		d.Row(nil)
		d.Schema()
		if d.Err() == nil {
			t.Fatalf("cut at %d of %d: no error", cut, len(full))
		}
		if !errors.Is(d.Err(), ErrTruncated) {
			// Unknown-kind errors are acceptable for cuts inside a Value.
			continue
		}
	}
	// And the complete payload decodes clean.
	d := NewDecoder(full)
	if d.Uvarint() != 300 || d.Varint() != -5 || d.Float() != 1.5 || d.String() != "hello" {
		t.Fatal("scalar decode mismatch")
	}
	d.Value()
	d.SC()
	d.Row(nil)
	d.Schema()
	if d.Err() != nil {
		t.Fatal(d.Err())
	}
}
