// Binary encoding of protocol payloads: varint-based, schema-aware, and
// symmetric (every Encoder.X has a Decoder.X that accepts exactly its
// output). The Decoder carries a sticky error so frame decoding reads as
// straight-line code and checks once at the end.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"time"

	"prefdb/internal/engine"
	"prefdb/internal/exec"
	"prefdb/internal/prel"
	"prefdb/internal/schema"
	"prefdb/internal/types"
)

// ErrTruncated reports a payload that ended before its encoded content.
var ErrTruncated = errors.New("wire: truncated payload")

// Encoder builds a frame payload.
type Encoder struct {
	b []byte
}

// Bytes returns the encoded payload.
func (e *Encoder) Bytes() []byte { return e.b }

// Uvarint appends an unsigned varint.
func (e *Encoder) Uvarint(v uint64) { e.b = binary.AppendUvarint(e.b, v) }

// Byte appends one raw byte.
func (e *Encoder) Byte(b byte) { e.b = append(e.b, b) }

// Varint appends a signed (zig-zag) varint.
func (e *Encoder) Varint(v int64) { e.b = binary.AppendVarint(e.b, v) }

// Bool appends a single byte 0/1.
func (e *Encoder) Bool(v bool) {
	if v {
		e.b = append(e.b, 1)
	} else {
		e.b = append(e.b, 0)
	}
}

// Float appends a float64 as its 8-byte IEEE bits (big-endian), so the
// value round-trips bit-exactly — required by the byte-identical results
// contract between remote and embedded execution.
func (e *Encoder) Float(v float64) {
	e.b = binary.BigEndian.AppendUint64(e.b, math.Float64bits(v))
}

// String appends a length-prefixed string.
func (e *Encoder) String(s string) {
	e.Uvarint(uint64(len(s)))
	e.b = append(e.b, s...)
}

// Value appends one relational scalar: kind byte plus kind-specific
// payload.
func (e *Encoder) Value(v types.Value) {
	e.b = append(e.b, byte(v.Kind()))
	switch v.Kind() {
	case types.KindNull:
	case types.KindInt:
		e.Varint(v.AsInt())
	case types.KindFloat:
		e.Float(v.AsFloat())
	case types.KindString:
		e.String(v.AsString())
	case types.KindBool:
		e.Bool(v.AsBool())
	}
}

// SC appends a score-confidence pair: known byte, then score and conf for
// known pairs (⊥ costs one byte).
func (e *Encoder) SC(sc types.SC) {
	e.Bool(!sc.IsBottom())
	if !sc.IsBottom() {
		e.Float(sc.Score)
		e.Float(sc.Conf)
	}
}

// Row appends one p-relation row: tuple width, values, score-confidence
// pair.
func (e *Encoder) Row(r prel.Row) {
	e.Uvarint(uint64(len(r.Tuple)))
	for _, v := range r.Tuple {
		e.Value(v)
	}
	e.SC(r.SC)
}

// Schema appends a relation schema: columns (table, name, kind) and key
// ordinals.
func (e *Encoder) Schema(s *schema.Schema) {
	e.Uvarint(uint64(len(s.Columns)))
	for _, c := range s.Columns {
		e.String(c.Table)
		e.String(c.Name)
		e.b = append(e.b, byte(c.Kind))
	}
	e.Uvarint(uint64(len(s.Key)))
	for _, k := range s.Key {
		e.Uvarint(uint64(k))
	}
}

// Settings appends the explicitly-set query options: a presence mask, then
// the value of each present option in mask-bit order. Only options the
// caller actually chose travel, so server-side defaults fill the rest of
// the precedence chain exactly as they would embedded.
func (e *Encoder) Settings(s engine.Settings) {
	var mask uint64
	for i, has := range settingsPresence(&s) {
		if *has {
			mask |= 1 << i
		}
	}
	e.Uvarint(mask)
	if s.HasMode {
		e.Uvarint(uint64(s.Mode))
	}
	if s.HasWorkers {
		e.Varint(int64(s.Workers))
	}
	if s.HasTimeout {
		e.Varint(int64(s.Timeout))
	}
	if s.HasMaxRows {
		e.Varint(int64(s.MaxRows))
	}
	if s.HasMaxCells {
		e.Varint(int64(s.MaxCells))
	}
	if s.HasMemoryBudget {
		e.Varint(s.MemoryBudget)
	}
	if s.HasCache {
		e.Uvarint(uint64(s.Cache))
	}
	if s.HasBatch {
		e.Uvarint(uint64(s.Batch))
	}
	if s.HasBatchSize {
		e.Varint(int64(s.BatchSize))
	}
	if s.HasColstore {
		e.Uvarint(uint64(s.Colstore))
	}
	// HasProfile carries no value: the binding itself cannot travel. The
	// server rejects statements whose mask sets it.
}

// settingsPresence enumerates the Has* fields in mask-bit order; encoder
// and decoder share it so the bit assignment cannot drift.
func settingsPresence(s *engine.Settings) []*bool {
	return []*bool{
		&s.HasMode, &s.HasWorkers, &s.HasTimeout, &s.HasMaxRows,
		&s.HasMaxCells, &s.HasMemoryBudget, &s.HasCache, &s.HasBatch,
		&s.HasBatchSize, &s.HasColstore, &s.HasProfile,
	}
}

// statsFields enumerates Stats counters in wire order; encoder and decoder
// share it. Appending new counters at the end keeps old captures readable.
func statsFields(s *exec.Stats) []*int {
	return []*int{
		&s.RowsScanned, &s.TuplesMaterialized, &s.CellsMaterialized,
		&s.NativeCalls, &s.IndexProbes, &s.PreferEvals,
		&s.ScoreRelationRows, &s.ScoreEvals, &s.CacheHits, &s.CacheMisses,
		&s.Batches, &s.SegmentsScanned, &s.SegmentsSkipped,
	}
}

// Stats appends the execution counters (count-prefixed varints).
func (e *Encoder) Stats(s exec.Stats) {
	fields := statsFields(&s)
	e.Uvarint(uint64(len(fields)))
	for _, f := range fields {
		e.Varint(int64(*f))
	}
}

// Error appends a structured statement failure. Guard errors (lifecycle
// trips) keep their full structure — limit kind, budget, observed value,
// stats — so the client can rebuild a *exec.GuardError and the embedded
// errors.Is / errors.As contracts hold across the wire; other errors
// travel as their message.
func (e *Encoder) Error(err error) {
	var ge *exec.GuardError
	if errors.As(err, &ge) {
		e.Bool(true)
		e.String(string(ge.Limit))
		e.Varint(ge.Budget)
		e.Varint(ge.Observed)
		e.Stats(ge.Stats)
		return
	}
	e.Bool(false)
	e.String(err.Error())
}

// Decoder consumes a frame payload produced by Encoder. The first failure
// sticks: subsequent reads return zero values and Err reports it.
type Decoder struct {
	b   []byte
	err error
}

// NewDecoder wraps a payload.
func NewDecoder(b []byte) *Decoder { return &Decoder{b: b} }

// Err returns the first decoding failure, nil if all reads succeeded.
func (d *Decoder) Err() error { return d.err }

// fail records the sticky error.
func (d *Decoder) fail(err error) {
	if d.err == nil {
		d.err = err
	}
}

// Uvarint reads an unsigned varint.
func (d *Decoder) Uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b)
	if n <= 0 {
		d.fail(ErrTruncated)
		return 0
	}
	d.b = d.b[n:]
	return v
}

// Varint reads a signed varint.
func (d *Decoder) Varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b)
	if n <= 0 {
		d.fail(ErrTruncated)
		return 0
	}
	d.b = d.b[n:]
	return v
}

// Byte reads one raw byte.
func (d *Decoder) Byte() byte {
	if d.err != nil {
		return 0
	}
	if len(d.b) < 1 {
		d.fail(ErrTruncated)
		return 0
	}
	v := d.b[0]
	d.b = d.b[1:]
	return v
}

// Bool reads a 0/1 byte.
func (d *Decoder) Bool() bool { return d.Byte() != 0 }

// Float reads an 8-byte IEEE float.
func (d *Decoder) Float() float64 {
	if d.err != nil {
		return 0
	}
	if len(d.b) < 8 {
		d.fail(ErrTruncated)
		return 0
	}
	v := math.Float64frombits(binary.BigEndian.Uint64(d.b))
	d.b = d.b[8:]
	return v
}

// String reads a length-prefixed string.
func (d *Decoder) String() string {
	n := d.Uvarint()
	if d.err != nil {
		return ""
	}
	if uint64(len(d.b)) < n {
		d.fail(ErrTruncated)
		return ""
	}
	s := string(d.b[:n])
	d.b = d.b[n:]
	return s
}

// Value reads one relational scalar.
func (d *Decoder) Value() types.Value {
	switch k := types.Kind(d.Byte()); k {
	case types.KindNull:
		return types.Null()
	case types.KindInt:
		return types.Int(d.Varint())
	case types.KindFloat:
		return types.Float(d.Float())
	case types.KindString:
		return types.Str(d.String())
	case types.KindBool:
		return types.Bool(d.Bool())
	default:
		if d.err == nil {
			d.fail(fmt.Errorf("wire: unknown value kind %d", k))
		}
		return types.Null()
	}
}

// SC reads a score-confidence pair.
func (d *Decoder) SC() types.SC {
	if !d.Bool() {
		return types.Bottom()
	}
	score := d.Float()
	conf := d.Float()
	return types.NewSC(score, conf)
}

// Row reads one p-relation row into buf (reused when wide enough),
// returning the row backed by it.
func (d *Decoder) Row(buf []types.Value) (prel.Row, []types.Value) {
	n := int(d.Uvarint())
	if d.err != nil || n > len(d.b) { // each value costs ≥ 1 byte
		d.fail(ErrTruncated)
		return prel.Row{}, buf
	}
	if cap(buf) < n {
		buf = make([]types.Value, n)
	}
	buf = buf[:n]
	for i := range buf {
		buf[i] = d.Value()
	}
	sc := d.SC()
	return prel.Row{Tuple: buf, SC: sc}, buf
}

// Schema reads a relation schema.
func (d *Decoder) Schema() *schema.Schema {
	n := int(d.Uvarint())
	if d.err != nil || n > len(d.b) {
		d.fail(ErrTruncated)
		return nil
	}
	s := &schema.Schema{Columns: make([]schema.Column, n)}
	for i := range s.Columns {
		s.Columns[i].Table = d.String()
		s.Columns[i].Name = d.String()
		s.Columns[i].Kind = types.Kind(d.Byte())
	}
	k := int(d.Uvarint())
	if d.err != nil || k > len(d.b)+1 {
		d.fail(ErrTruncated)
		return nil
	}
	for i := 0; i < k; i++ {
		s.Key = append(s.Key, int(d.Uvarint()))
	}
	if d.err != nil {
		return nil
	}
	return s
}

// Settings reads the explicitly-set query options.
func (d *Decoder) Settings() engine.Settings {
	var s engine.Settings
	mask := d.Uvarint()
	for i, has := range settingsPresence(&s) {
		*has = mask&(1<<i) != 0
	}
	if s.HasMode {
		s.Mode = engine.Mode(d.Uvarint())
	}
	if s.HasWorkers {
		s.Workers = int(d.Varint())
	}
	if s.HasTimeout {
		s.Timeout = time.Duration(d.Varint())
	}
	if s.HasMaxRows {
		s.MaxRows = int(d.Varint())
	}
	if s.HasMaxCells {
		s.MaxCells = int(d.Varint())
	}
	if s.HasMemoryBudget {
		s.MemoryBudget = d.Varint()
	}
	if s.HasCache {
		s.Cache = engine.CacheMode(d.Uvarint())
	}
	if s.HasBatch {
		s.Batch = engine.BatchMode(d.Uvarint())
	}
	if s.HasBatchSize {
		s.BatchSize = int(d.Varint())
	}
	if s.HasColstore {
		s.Colstore = engine.ColstoreMode(d.Uvarint())
	}
	return s
}

// Stats reads the execution counters, tolerating captures with fewer or
// more counters than this build knows (extra counters are skipped).
func (d *Decoder) Stats() exec.Stats {
	var s exec.Stats
	n := int(d.Uvarint())
	fields := statsFields(&s)
	for i := 0; i < n; i++ {
		v := d.Varint()
		if i < len(fields) {
			*fields[i] = int(v)
		}
	}
	return s
}

// Error reads a structured statement failure (never nil on a well-formed
// payload).
func (d *Decoder) Error() error {
	if d.Bool() {
		kind := exec.LimitKind(d.String())
		budget := d.Varint()
		observed := d.Varint()
		stats := d.Stats()
		if d.err != nil {
			return d.err
		}
		return exec.NewGuardError(kind, budget, observed, stats)
	}
	msg := d.String()
	if d.err != nil {
		return d.err
	}
	return errors.New(msg)
}
