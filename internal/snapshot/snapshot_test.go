package snapshot

import (
	"bytes"
	"testing"

	"prefdb/internal/catalog"
	"prefdb/internal/datagen"
	"prefdb/internal/schema"
	"prefdb/internal/storage"
	"prefdb/internal/types"
)

func buildCatalog(t *testing.T) *catalog.Catalog {
	t.Helper()
	cat := catalog.New()
	s := schema.New(
		schema.Column{Name: "id", Kind: types.KindInt},
		schema.Column{Name: "name", Kind: types.KindString},
		schema.Column{Name: "score", Kind: types.KindFloat},
		schema.Column{Name: "flag", Kind: types.KindBool},
		schema.Column{Name: "opt", Kind: types.KindInt},
	).WithKey("id")
	tbl, err := cat.CreateTable("t", s)
	if err != nil {
		t.Fatal(err)
	}
	rows := [][]types.Value{
		{types.Int(1), types.Str("a"), types.Float(1.5), types.Bool(true), types.Int(7)},
		{types.Int(2), types.Str("b'с"), types.Float(-0.25), types.Bool(false), types.Null()},
		{types.Int(3), types.Str(""), types.Float(0), types.Bool(true), types.Int(-9)},
	}
	for _, r := range rows {
		if err := tbl.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := cat.CreateHashIndex("t", "name"); err != nil {
		t.Fatal(err)
	}
	if err := cat.CreateBTreeIndex("t", "id"); err != nil {
		t.Fatal(err)
	}
	return cat
}

func TestSaveLoadRoundTrip(t *testing.T) {
	cat := buildCatalog(t)
	var buf bytes.Buffer
	if err := Save(cat, &buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := got.Table("t")
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Len() != 3 {
		t.Fatalf("rows = %d", tbl.Len())
	}
	// Schema, key and index definitions round-trip.
	s := tbl.Schema()
	if s.Len() != 5 || s.Columns[1].Kind != types.KindString {
		t.Errorf("schema = %v", s)
	}
	if !s.HasKey() || s.Columns[s.Key[0]].Name != "id" {
		t.Errorf("key = %v", s.Key)
	}
	if got := tbl.HashIndexColumns(); len(got) != 1 || got[0] != "name" {
		t.Errorf("hash indexes = %v", got)
	}
	if got := tbl.BTreeIndexColumns(); len(got) != 1 || got[0] != "id" {
		t.Errorf("btree indexes = %v", got)
	}
	// Values round-trip including NULL, negative floats, unicode, bools.
	var rows [][]types.Value
	tbl.Heap.Scan(func(_ storage.RowID, tuple []types.Value) bool {
		rows = append(rows, tuple)
		return true
	})
	if rows[1][1].AsString() != "b'с" || !rows[1][4].IsNull() || rows[1][2].AsFloat() != -0.25 {
		t.Errorf("row 1 = %v", rows[1])
	}
	if !rows[0][3].AsBool() || rows[1][3].AsBool() {
		t.Error("bools corrupted")
	}
	// Rebuilt indexes are functional.
	hi, _ := tbl.HashIndexOn("name")
	if len(hi.Lookup([]types.Value{types.Str("a")})) != 1 {
		t.Error("hash index not rebuilt")
	}
	bi, _ := tbl.BTreeIndexOn("id")
	if len(bi.Lookup(types.Int(2))) != 1 {
		t.Error("btree index not rebuilt")
	}
}

func TestSaveLoadGeneratedDataset(t *testing.T) {
	cat := catalog.New()
	if _, err := datagen.LoadIMDB(cat, datagen.Config{Scale: 0.02, Seed: 5}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Save(cat, &buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range cat.Tables() {
		orig, _ := cat.Table(name)
		loaded, err := got.Table(name)
		if err != nil || loaded.Len() != orig.Len() {
			t.Errorf("table %s: %v, %d vs %d rows", name, err, loaded.Len(), orig.Len())
		}
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("garbage"))); err == nil {
		t.Error("garbage should fail to load")
	}
	if _, err := Load(bytes.NewReader(nil)); err == nil {
		t.Error("empty stream should fail to load")
	}
}

func TestVersionCheck(t *testing.T) {
	cat := buildCatalog(t)
	var buf bytes.Buffer
	if err := Save(cat, &buf); err != nil {
		t.Fatal(err)
	}
	// Corrupt the version by re-encoding a DTO with a bad version through
	// the same path: simplest is to decode+tweak via the public API being
	// absent, so instead assert the happy path encodes the current version
	// by loading successfully (covered above) and that truncated streams
	// fail.
	trunc := buf.Bytes()[:buf.Len()/2]
	if _, err := Load(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated snapshot should fail")
	}
}
