// Package snapshot serializes a whole database (schemas, primary keys,
// index definitions and rows) to a stream and restores it, so catalogs
// survive process restarts and generated benchmark datasets can be reused.
// The format is a gob-encoded snapshot; indexes are rebuilt on load.
package snapshot

import (
	"encoding/gob"
	"fmt"
	"io"

	"prefdb/internal/catalog"
	"prefdb/internal/schema"
	"prefdb/internal/storage"
	"prefdb/internal/types"
)

// formatVersion guards against decoding snapshots written by incompatible
// versions.
const formatVersion = 1

type dbDTO struct {
	Version int
	Tables  []tableDTO
}

type tableDTO struct {
	Name     string
	Columns  []colDTO
	Key      []string
	HashIdx  []string
	BTreeIdx []string
	Rows     [][]valDTO
}

type colDTO struct {
	Name string
	Kind uint8
}

type valDTO struct {
	K uint8
	I int64
	F float64
	S string
}

func encodeValue(v types.Value) valDTO {
	switch v.Kind() {
	case types.KindInt:
		return valDTO{K: uint8(types.KindInt), I: v.AsInt()}
	case types.KindFloat:
		return valDTO{K: uint8(types.KindFloat), F: v.AsFloat()}
	case types.KindString:
		return valDTO{K: uint8(types.KindString), S: v.AsString()}
	case types.KindBool:
		var i int64
		if v.AsBool() {
			i = 1
		}
		return valDTO{K: uint8(types.KindBool), I: i}
	default:
		return valDTO{K: uint8(types.KindNull)}
	}
}

func decodeValue(d valDTO) (types.Value, error) {
	switch types.Kind(d.K) {
	case types.KindNull:
		return types.Null(), nil
	case types.KindInt:
		return types.Int(d.I), nil
	case types.KindFloat:
		return types.Float(d.F), nil
	case types.KindString:
		return types.Str(d.S), nil
	case types.KindBool:
		return types.Bool(d.I != 0), nil
	default:
		return types.Value{}, fmt.Errorf("snapshot: unknown value kind %d", d.K)
	}
}

// Save writes the catalog's full contents to w.
func Save(cat *catalog.Catalog, w io.Writer) error {
	dto := dbDTO{Version: formatVersion}
	for _, name := range cat.Tables() {
		t, err := cat.Table(name)
		if err != nil {
			return err
		}
		s := t.Schema()
		td := tableDTO{
			Name:     name,
			HashIdx:  t.HashIndexColumns(),
			BTreeIdx: t.BTreeIndexColumns(),
		}
		for _, c := range s.Columns {
			td.Columns = append(td.Columns, colDTO{Name: c.Name, Kind: uint8(c.Kind)})
		}
		for _, k := range s.Key {
			td.Key = append(td.Key, s.Columns[k].Name)
		}
		td.Rows = make([][]valDTO, 0, t.Len())
		t.Heap.Scan(func(_ storage.RowID, tuple []types.Value) bool {
			row := make([]valDTO, len(tuple))
			for i, v := range tuple {
				row[i] = encodeValue(v)
			}
			td.Rows = append(td.Rows, row)
			return true
		})
		dto.Tables = append(dto.Tables, td)
	}
	return gob.NewEncoder(w).Encode(dto)
}

// Load restores a catalog from a snapshot stream, rebuilding all indexes.
func Load(r io.Reader) (*catalog.Catalog, error) {
	var dto dbDTO
	if err := gob.NewDecoder(r).Decode(&dto); err != nil {
		return nil, fmt.Errorf("snapshot: decode: %w", err)
	}
	if dto.Version != formatVersion {
		return nil, fmt.Errorf("snapshot: unsupported format version %d (want %d)", dto.Version, formatVersion)
	}
	cat := catalog.New()
	for _, td := range dto.Tables {
		cols := make([]schema.Column, len(td.Columns))
		for i, c := range td.Columns {
			cols[i] = schema.Column{Name: c.Name, Kind: types.Kind(c.Kind)}
		}
		s := schema.New(cols...)
		if len(td.Key) > 0 {
			s.WithKey(td.Key...)
		}
		t, err := cat.CreateTable(td.Name, s)
		if err != nil {
			return nil, err
		}
		for ri, row := range td.Rows {
			tuple := make([]types.Value, len(row))
			for i, d := range row {
				v, err := decodeValue(d)
				if err != nil {
					return nil, fmt.Errorf("snapshot: table %s row %d: %w", td.Name, ri, err)
				}
				tuple[i] = v
			}
			if err := t.Insert(tuple); err != nil {
				return nil, fmt.Errorf("snapshot: table %s row %d: %w", td.Name, ri, err)
			}
		}
		// Rebuild indexes after rows so each build is a single pass.
		for _, c := range td.HashIdx {
			if err := cat.CreateHashIndex(td.Name, c); err != nil {
				return nil, err
			}
		}
		for _, c := range td.BTreeIdx {
			if err := cat.CreateBTreeIndex(td.Name, c); err != nil {
				return nil, err
			}
		}
	}
	return cat, nil
}
