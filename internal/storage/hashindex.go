package storage

import (
	"sync/atomic"

	"prefdb/internal/types"
)

// HashIndex is an equality index over one or more columns of a heap.
// Collisions are resolved by re-checking the indexed values against the
// heap tuple, so lookups are exact.
type HashIndex struct {
	heap    *Heap
	cols    []int
	buckets map[uint64][]RowID
	probes  atomic.Int64 // prefdb:atomic
}

// NewHashIndex builds an index over the given column ordinals, scanning the
// current heap contents.
func NewHashIndex(h *Heap, cols []int) *HashIndex {
	ix := &HashIndex{heap: h, cols: append([]int(nil), cols...), buckets: map[uint64][]RowID{}}
	h.Scan(func(id RowID, tuple []types.Value) bool {
		ix.Add(id, tuple)
		return true
	})
	return ix
}

// Columns returns the indexed column ordinals.
func (ix *HashIndex) Columns() []int { return ix.cols }

// Probes returns the number of Lookup calls served (cost accounting).
func (ix *HashIndex) Probes() int { return int(ix.probes.Load()) }

// Add indexes a newly inserted tuple.
func (ix *HashIndex) Add(id RowID, tuple []types.Value) {
	h := ix.hashKey(tuple)
	ix.buckets[h] = append(ix.buckets[h], id)
}

func (ix *HashIndex) hashKey(tuple []types.Value) uint64 {
	h := uint64(1469598103934665603)
	for _, c := range ix.cols {
		h ^= tuple[c].Hash()
		h *= 1099511628211
	}
	return h
}

func hashValues(vals []types.Value) uint64 {
	return types.HashTuple(vals)
}

// Lookup returns the RowIDs whose indexed columns equal key (one value per
// indexed column). Deleted rows are skipped.
func (ix *HashIndex) Lookup(key []types.Value) []RowID {
	ix.probes.Add(1)
	h := uint64(1469598103934665603)
	for _, v := range key {
		h ^= v.Hash()
		h *= 1099511628211
	}
	var out []RowID
	for _, id := range ix.buckets[h] {
		tuple, ok := ix.heap.Get(id)
		if !ok {
			continue
		}
		match := true
		for i, c := range ix.cols {
			if !tuple[c].Equal(key[i]) {
				match = false
				break
			}
		}
		if match {
			out = append(out, id)
		}
	}
	return out
}
