package storage

import (
	"sync/atomic"

	"prefdb/internal/types"
)

// btreeOrder is the maximum number of keys per B+-tree node.
const btreeOrder = 64

// BTreeIndex is a B+-tree over a single column of a heap, supporting point
// and range lookups in key order. Duplicate keys are allowed.
//
// The tree is insert-only; deletions are handled by the heap's tombstones
// (lookups skip dead rows), matching the append-mostly usage of the engine.
type BTreeIndex struct {
	heap   *Heap
	col    int
	root   btreeNode
	height int
	size   int
	probes atomic.Int64 // prefdb:atomic
}

type btreeNode interface {
	// insert adds (key, id); when the node splits it returns the separator
	// key and the new right sibling, otherwise nil.
	insert(key types.Value, id RowID) (types.Value, btreeNode)
}

type btreeLeaf struct {
	keys []types.Value
	ids  []RowID
	next *btreeLeaf
}

type btreeInner struct {
	keys     []types.Value
	children []btreeNode
}

// NewBTreeIndex builds a B+-tree over column col of h from its current
// contents.
func NewBTreeIndex(h *Heap, col int) *BTreeIndex {
	ix := &BTreeIndex{heap: h, col: col, root: &btreeLeaf{}, height: 1}
	h.Scan(func(id RowID, tuple []types.Value) bool {
		ix.Add(id, tuple)
		return true
	})
	return ix
}

// Column returns the indexed column ordinal.
func (ix *BTreeIndex) Column() int { return ix.col }

// Len returns the number of indexed entries.
func (ix *BTreeIndex) Len() int { return ix.size }

// Height returns the tree height (leaf = 1), exposed for invariant tests.
func (ix *BTreeIndex) Height() int { return ix.height }

// Probes returns the number of lookups served.
func (ix *BTreeIndex) Probes() int { return int(ix.probes.Load()) }

// Add indexes a newly inserted tuple.
func (ix *BTreeIndex) Add(id RowID, tuple []types.Value) {
	key := tuple[ix.col]
	sep, right := ix.root.insert(key, id)
	if right != nil {
		ix.root = &btreeInner{keys: []types.Value{sep}, children: []btreeNode{ix.root, right}}
		ix.height++
	}
	ix.size++
}

// lowerBound returns the first index in keys whose key is >= k (or > k when
// strict), using the total order of types.Compare.
func lowerBound(keys []types.Value, k types.Value, strict bool) int {
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := (lo + hi) / 2
		c, _ := types.Compare(keys[mid], k)
		if c < 0 || (strict && c == 0) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

func (l *btreeLeaf) insert(key types.Value, id RowID) (types.Value, btreeNode) {
	at := lowerBound(l.keys, key, true) // insert after duplicates: stable
	l.keys = append(l.keys, types.Value{})
	copy(l.keys[at+1:], l.keys[at:])
	l.keys[at] = key
	l.ids = append(l.ids, RowID{})
	copy(l.ids[at+1:], l.ids[at:])
	l.ids[at] = id
	if len(l.keys) <= btreeOrder {
		return types.Value{}, nil
	}
	mid := len(l.keys) / 2
	right := &btreeLeaf{
		keys: append([]types.Value(nil), l.keys[mid:]...),
		ids:  append([]RowID(nil), l.ids[mid:]...),
		next: l.next,
	}
	l.keys = l.keys[:mid]
	l.ids = l.ids[:mid]
	l.next = right
	return right.keys[0], right
}

func (n *btreeInner) insert(key types.Value, id RowID) (types.Value, btreeNode) {
	at := lowerBound(n.keys, key, true)
	sep, right := n.children[at].insert(key, id)
	if right == nil {
		return types.Value{}, nil
	}
	n.keys = append(n.keys, types.Value{})
	copy(n.keys[at+1:], n.keys[at:])
	n.keys[at] = sep
	n.children = append(n.children, nil)
	copy(n.children[at+2:], n.children[at+1:])
	n.children[at+1] = right
	if len(n.keys) <= btreeOrder {
		return types.Value{}, nil
	}
	mid := len(n.keys) / 2
	up := n.keys[mid]
	rightNode := &btreeInner{
		keys:     append([]types.Value(nil), n.keys[mid+1:]...),
		children: append([]btreeNode(nil), n.children[mid+1:]...),
	}
	n.keys = n.keys[:mid]
	n.children = n.children[:mid+1]
	return up, rightNode
}

// findLeaf descends to the leaf that may contain k.
func (ix *BTreeIndex) findLeaf(k types.Value) *btreeLeaf {
	node := ix.root
	for {
		switch n := node.(type) {
		case *btreeLeaf:
			return n
		case *btreeInner:
			node = n.children[lowerBound(n.keys, k, true)]
		}
	}
}

// Lookup returns the RowIDs of live tuples whose indexed column equals key.
func (ix *BTreeIndex) Lookup(key types.Value) []RowID {
	var out []RowID
	ix.Range(key, key, true, true, func(id RowID) bool {
		out = append(out, id)
		return true
	})
	return out
}

// Range visits live RowIDs with key in the interval [lo, hi] (bounds
// optional via null Values meaning unbounded; loIncl/hiIncl select open or
// closed ends) in ascending key order. The visitor returns false to stop.
func (ix *BTreeIndex) Range(lo, hi types.Value, loIncl, hiIncl bool, visit func(id RowID) bool) {
	ix.probes.Add(1)
	var leaf *btreeLeaf
	var start int
	if lo.IsNull() {
		leaf = ix.leftmostLeaf()
	} else {
		leaf = ix.findLeaf(lo)
		start = lowerBound(leaf.keys, lo, !loIncl)
	}
	for leaf != nil {
		for i := start; i < len(leaf.keys); i++ {
			k := leaf.keys[i]
			if !hi.IsNull() {
				c, _ := types.Compare(k, hi)
				if c > 0 || (c == 0 && !hiIncl) {
					return
				}
			}
			if _, ok := ix.heap.Get(leaf.ids[i]); !ok {
				continue
			}
			if !visit(leaf.ids[i]) {
				return
			}
		}
		leaf = leaf.next
		start = 0
	}
}

func (ix *BTreeIndex) leftmostLeaf() *btreeLeaf {
	node := ix.root
	for {
		switch n := node.(type) {
		case *btreeLeaf:
			return n
		case *btreeInner:
			node = n.children[0]
		}
	}
}

// Ascend visits all live entries in ascending key order.
func (ix *BTreeIndex) Ascend(visit func(key types.Value, id RowID) bool) {
	for leaf := ix.leftmostLeaf(); leaf != nil; leaf = leaf.next {
		for i, k := range leaf.keys {
			if _, ok := ix.heap.Get(leaf.ids[i]); !ok {
				continue
			}
			if !visit(k, leaf.ids[i]) {
				return
			}
		}
	}
}

// checkInvariants validates node fill, key ordering, and uniform leaf depth;
// it is exported to tests via export_test.go.
func (ix *BTreeIndex) checkInvariants() error {
	return checkNode(ix.root, ix.height, true)
}

func checkNode(node btreeNode, depthLeft int, isRoot bool) error {
	switch n := node.(type) {
	case *btreeLeaf:
		if depthLeft != 1 {
			return errDepth
		}
		for i := 1; i < len(n.keys); i++ {
			if c, _ := types.Compare(n.keys[i-1], n.keys[i]); c > 0 {
				return errOrder
			}
		}
		return nil
	case *btreeInner:
		if len(n.children) != len(n.keys)+1 {
			return errFanout
		}
		if !isRoot && len(n.keys) < btreeOrder/4 {
			return errUnderfull
		}
		for i := 1; i < len(n.keys); i++ {
			if c, _ := types.Compare(n.keys[i-1], n.keys[i]); c > 0 {
				return errOrder
			}
		}
		for _, ch := range n.children {
			if err := checkNode(ch, depthLeft-1, false); err != nil {
				return err
			}
		}
		return nil
	}
	return nil
}

type btreeErr string

func (e btreeErr) Error() string { return string(e) }

const (
	errDepth     = btreeErr("btree: leaves at unequal depth")
	errOrder     = btreeErr("btree: keys out of order")
	errFanout    = btreeErr("btree: children/keys arity mismatch")
	errUnderfull = btreeErr("btree: underfull inner node")
)
