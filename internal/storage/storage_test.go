package storage

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"prefdb/internal/schema"
	"prefdb/internal/types"
)

func intSchema() *schema.Schema {
	return schema.New(
		schema.Column{Table: "t", Name: "id", Kind: types.KindInt},
		schema.Column{Table: "t", Name: "v", Kind: types.KindInt},
	).WithKey("id")
}

func fill(t testing.TB, h *Heap, n int) []RowID {
	t.Helper()
	ids := make([]RowID, n)
	for i := 0; i < n; i++ {
		id, err := h.Insert([]types.Value{types.Int(int64(i)), types.Int(int64(i * 10))})
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	return ids
}

func TestHeapInsertGet(t *testing.T) {
	h := NewHeap(intSchema())
	ids := fill(t, h, 1000)
	if h.Len() != 1000 {
		t.Fatalf("Len = %d", h.Len())
	}
	if h.Pages() != 1000/PageSize+1 {
		t.Errorf("Pages = %d", h.Pages())
	}
	for i, id := range ids {
		tuple, ok := h.Get(id)
		if !ok || tuple[0].AsInt() != int64(i) {
			t.Fatalf("Get(%v) = %v, %v", id, tuple, ok)
		}
	}
	if _, ok := h.Get(RowID{Page: 9999, Slot: 0}); ok {
		t.Error("Get of invalid page should fail")
	}
	if _, ok := h.Get(RowID{Page: 0, Slot: 9999}); ok {
		t.Error("Get of invalid slot should fail")
	}
}

func TestHeapArityCheck(t *testing.T) {
	h := NewHeap(intSchema())
	if _, err := h.Insert([]types.Value{types.Int(1)}); err == nil {
		t.Error("arity mismatch should error")
	}
}

func TestHeapDeleteAndScan(t *testing.T) {
	h := NewHeap(intSchema())
	ids := fill(t, h, 10)
	if !h.Delete(ids[3]) {
		t.Fatal("Delete failed")
	}
	if h.Delete(ids[3]) {
		t.Error("double Delete should fail")
	}
	if h.Len() != 9 {
		t.Errorf("Len after delete = %d", h.Len())
	}
	if _, ok := h.Get(ids[3]); ok {
		t.Error("deleted row still visible")
	}
	var seen []int64
	h.Scan(func(_ RowID, tuple []types.Value) bool {
		seen = append(seen, tuple[0].AsInt())
		return true
	})
	if len(seen) != 9 {
		t.Fatalf("Scan saw %d rows", len(seen))
	}
	for _, v := range seen {
		if v == 3 {
			t.Error("Scan visited deleted row")
		}
	}
	// Early stop.
	count := 0
	h.Scan(func(RowID, []types.Value) bool {
		count++
		return count < 4
	})
	if count != 4 {
		t.Errorf("early-stop Scan visited %d", count)
	}
}

func TestHashIndexLookup(t *testing.T) {
	h := NewHeap(intSchema())
	for i := 0; i < 500; i++ {
		// v column has duplicates: i%50.
		if _, err := h.Insert([]types.Value{types.Int(int64(i)), types.Int(int64(i % 50))}); err != nil {
			t.Fatal(err)
		}
	}
	ix := NewHashIndex(h, []int{1})
	got := ix.Lookup([]types.Value{types.Int(7)})
	if len(got) != 10 {
		t.Fatalf("Lookup dup key = %d rows, want 10", len(got))
	}
	for _, id := range got {
		tuple, _ := h.Get(id)
		if tuple[1].AsInt() != 7 {
			t.Errorf("wrong tuple %v", tuple)
		}
	}
	if got := ix.Lookup([]types.Value{types.Int(777)}); len(got) != 0 {
		t.Errorf("missing key returned %d rows", len(got))
	}
	if ix.Probes() != 2 {
		t.Errorf("Probes = %d", ix.Probes())
	}
}

func TestHashIndexMaintainedOnInsertAndDelete(t *testing.T) {
	h := NewHeap(intSchema())
	ix := NewHashIndex(h, []int{0})
	id, _ := h.Insert([]types.Value{types.Int(1), types.Int(2)})
	ix.Add(id, []types.Value{types.Int(1), types.Int(2)})
	if len(ix.Lookup([]types.Value{types.Int(1)})) != 1 {
		t.Fatal("inserted key not found")
	}
	h.Delete(id)
	if len(ix.Lookup([]types.Value{types.Int(1)})) != 0 {
		t.Error("deleted row should not be returned")
	}
}

func TestHashIndexComposite(t *testing.T) {
	s := schema.New(
		schema.Column{Name: "a", Kind: types.KindInt},
		schema.Column{Name: "b", Kind: types.KindString},
	)
	h := NewHeap(s)
	h.Insert([]types.Value{types.Int(1), types.Str("x")})
	h.Insert([]types.Value{types.Int(1), types.Str("y")})
	h.Insert([]types.Value{types.Int(2), types.Str("x")})
	ix := NewHashIndex(h, []int{0, 1})
	if got := ix.Lookup([]types.Value{types.Int(1), types.Str("x")}); len(got) != 1 {
		t.Errorf("composite lookup = %d rows", len(got))
	}
}

func TestBTreeSortedAscend(t *testing.T) {
	h := NewHeap(intSchema())
	r := rand.New(rand.NewSource(1))
	want := make([]int64, 0, 2000)
	for i := 0; i < 2000; i++ {
		v := int64(r.Intn(500))
		h.Insert([]types.Value{types.Int(int64(i)), types.Int(v)})
		want = append(want, v)
	}
	ix := NewBTreeIndex(h, 1)
	if err := ix.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if ix.Len() != 2000 {
		t.Errorf("Len = %d", ix.Len())
	}
	if ix.Height() < 2 {
		t.Errorf("expected multi-level tree, height = %d", ix.Height())
	}
	var got []int64
	ix.Ascend(func(k types.Value, _ RowID) bool {
		got = append(got, k.AsInt())
		return true
	})
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	if len(got) != len(want) {
		t.Fatalf("Ascend visited %d, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("Ascend[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestBTreePointLookup(t *testing.T) {
	h := NewHeap(intSchema())
	for i := 0; i < 1000; i++ {
		h.Insert([]types.Value{types.Int(int64(i)), types.Int(int64(i % 100))})
	}
	ix := NewBTreeIndex(h, 1)
	got := ix.Lookup(types.Int(42))
	if len(got) != 10 {
		t.Fatalf("Lookup = %d rows, want 10", len(got))
	}
	for _, id := range got {
		tuple, _ := h.Get(id)
		if tuple[1].AsInt() != 42 {
			t.Errorf("wrong tuple %v", tuple)
		}
	}
	if len(ix.Lookup(types.Int(4200))) != 0 {
		t.Error("missing key should return nothing")
	}
}

func TestBTreeRange(t *testing.T) {
	h := NewHeap(intSchema())
	for i := 0; i < 100; i++ {
		h.Insert([]types.Value{types.Int(int64(i)), types.Int(int64(i))})
	}
	ix := NewBTreeIndex(h, 1)
	collect := func(lo, hi types.Value, loIncl, hiIncl bool) []int64 {
		var out []int64
		ix.Range(lo, hi, loIncl, hiIncl, func(id RowID) bool {
			tuple, _ := h.Get(id)
			out = append(out, tuple[1].AsInt())
			return true
		})
		return out
	}
	if got := collect(types.Int(10), types.Int(13), true, true); len(got) != 4 || got[0] != 10 || got[3] != 13 {
		t.Errorf("[10,13] = %v", got)
	}
	if got := collect(types.Int(10), types.Int(13), false, false); len(got) != 2 || got[0] != 11 || got[1] != 12 {
		t.Errorf("(10,13) = %v", got)
	}
	if got := collect(types.Null(), types.Int(2), true, true); len(got) != 3 {
		t.Errorf("(-inf,2] = %v", got)
	}
	if got := collect(types.Int(97), types.Null(), true, true); len(got) != 3 {
		t.Errorf("[97,inf) = %v", got)
	}
	if got := collect(types.Null(), types.Null(), true, true); len(got) != 100 {
		t.Errorf("full range = %d", len(got))
	}
	// Early stop.
	n := 0
	ix.Range(types.Null(), types.Null(), true, true, func(RowID) bool {
		n++
		return n < 5
	})
	if n != 5 {
		t.Errorf("early stop visited %d", n)
	}
}

func TestBTreeSkipsDeleted(t *testing.T) {
	h := NewHeap(intSchema())
	var ids []RowID
	for i := 0; i < 50; i++ {
		id, _ := h.Insert([]types.Value{types.Int(int64(i)), types.Int(int64(i))})
		ids = append(ids, id)
	}
	ix := NewBTreeIndex(h, 1)
	h.Delete(ids[25])
	if len(ix.Lookup(types.Int(25))) != 0 {
		t.Error("deleted row visible through btree")
	}
	count := 0
	ix.Ascend(func(types.Value, RowID) bool { count++; return true })
	if count != 49 {
		t.Errorf("Ascend visited %d, want 49", count)
	}
}

func TestBTreeStrings(t *testing.T) {
	s := schema.New(schema.Column{Name: "name", Kind: types.KindString})
	h := NewHeap(s)
	words := []string{"delta", "alpha", "echo", "bravo", "charlie"}
	for _, w := range words {
		h.Insert([]types.Value{types.Str(w)})
	}
	ix := NewBTreeIndex(h, 0)
	var got []string
	ix.Ascend(func(k types.Value, _ RowID) bool {
		got = append(got, k.AsString())
		return true
	})
	want := []string{"alpha", "bravo", "charlie", "delta", "echo"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v", got)
		}
	}
	var ranged []string
	ix.Range(types.Str("b"), types.Str("d"), true, false, func(id RowID) bool {
		tuple, _ := h.Get(id)
		ranged = append(ranged, tuple[0].AsString())
		return true
	})
	if len(ranged) != 2 || ranged[0] != "bravo" || ranged[1] != "charlie" {
		t.Errorf("string range = %v", ranged)
	}
}

func TestBTreePropertySortedAndComplete(t *testing.T) {
	// Property: for any random multiset of int keys, the tree stays valid,
	// Ascend yields the sorted multiset, and every key is retrievable.
	f := func(keys []int16) bool {
		h := NewHeap(intSchema())
		for i, k := range keys {
			h.Insert([]types.Value{types.Int(int64(i)), types.Int(int64(k))})
		}
		ix := NewBTreeIndex(h, 1)
		if err := ix.CheckInvariants(); err != nil {
			return false
		}
		var got []int64
		ix.Ascend(func(k types.Value, _ RowID) bool {
			got = append(got, k.AsInt())
			return true
		})
		if len(got) != len(keys) {
			return false
		}
		want := make([]int64, len(keys))
		for i, k := range keys {
			want[i] = int64(k)
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		for _, k := range keys {
			if len(ix.Lookup(types.Int(int64(k)))) == 0 {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 40}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestRowIDString(t *testing.T) {
	if got := (RowID{Page: 2, Slot: 7}).String(); got != "2:7" {
		t.Errorf("String = %q", got)
	}
}
