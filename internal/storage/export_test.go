package storage

// CheckInvariants exposes B+-tree structural validation to tests.
func (ix *BTreeIndex) CheckInvariants() error { return ix.checkInvariants() }

// HashValuesForTest exposes tuple hashing for collision diagnostics.
var HashValuesForTest = hashValues
