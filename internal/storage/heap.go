// Package storage implements prefdb's in-memory storage layer: paged heap
// tables addressed by RowID, hash indexes for equality lookups, and B+-tree
// indexes for range scans.
package storage

import (
	"fmt"

	"prefdb/internal/schema"
	"prefdb/internal/types"
)

// PageSize is the number of tuple slots per heap page. Pages bound the
// allocation granularity and give RowIDs a stable two-level address, the
// same shape an on-disk heap would have. It is exported so block-aligned
// readers (the columnar segment store, tests) can align to page
// boundaries without a magic number.
const PageSize = 256

// RowID addresses a tuple within a heap: page ordinal and slot.
type RowID struct {
	Page uint32
	Slot uint32
}

// String renders the RowID as page:slot.
func (r RowID) String() string { return fmt.Sprintf("%d:%d", r.Page, r.Slot) }

type page struct {
	rows [][]types.Value
	dead []bool
	live int
}

// Heap is an append-oriented paged tuple store. It is not safe for
// concurrent mutation; the engine serializes writes per table.
type Heap struct {
	schema *schema.Schema
	pages  []*page
	count  int // live tuples
}

// NewHeap creates an empty heap for tuples laid out by s.
func NewHeap(s *schema.Schema) *Heap { return &Heap{schema: s} }

// Schema returns the tuple layout.
func (h *Heap) Schema() *schema.Schema { return h.schema }

// Len returns the number of live tuples.
func (h *Heap) Len() int { return h.count }

// Pages returns the number of allocated pages (for cost accounting).
func (h *Heap) Pages() int { return len(h.pages) }

// Insert appends a tuple and returns its RowID. The tuple must match the
// schema arity; storage does not copy the slice, so callers must not mutate
// it afterwards.
func (h *Heap) Insert(tuple []types.Value) (RowID, error) {
	if len(tuple) != h.schema.Len() {
		return RowID{}, fmt.Errorf("storage: tuple arity %d does not match schema arity %d", len(tuple), h.schema.Len())
	}
	var p *page
	if n := len(h.pages); n > 0 && len(h.pages[n-1].rows) < PageSize {
		p = h.pages[n-1]
	} else {
		p = &page{rows: make([][]types.Value, 0, PageSize), dead: make([]bool, 0, PageSize)}
		h.pages = append(h.pages, p)
	}
	p.rows = append(p.rows, tuple)
	p.dead = append(p.dead, false)
	p.live++
	h.count++
	return RowID{Page: uint32(len(h.pages) - 1), Slot: uint32(len(p.rows) - 1)}, nil
}

// Get fetches the tuple at id; ok is false for invalid or deleted rows.
func (h *Heap) Get(id RowID) ([]types.Value, bool) {
	if int(id.Page) >= len(h.pages) {
		return nil, false
	}
	p := h.pages[id.Page]
	if int(id.Slot) >= len(p.rows) || p.dead[id.Slot] {
		return nil, false
	}
	return p.rows[id.Slot], true
}

// Delete tombstones the tuple at id; it reports whether a live tuple was
// removed.
func (h *Heap) Delete(id RowID) bool {
	if int(id.Page) >= len(h.pages) {
		return false
	}
	p := h.pages[id.Page]
	if int(id.Slot) >= len(p.rows) || p.dead[id.Slot] {
		return false
	}
	p.dead[id.Slot] = true
	p.live--
	h.count--
	return true
}

// Blocks returns the number of pages, the unit of block-wise access via
// Block.
func (h *Heap) Blocks() int { return len(h.pages) }

// Block returns page i's tuple slab, its tombstone flags and its live
// count, for block-wise readers (the executor's vectorized scan). Callers
// must not mutate the returned slices; both alias heap storage.
func (h *Heap) Block(i int) (rows [][]types.Value, dead []bool, live int) {
	p := h.pages[i]
	return p.rows, p.dead, p.live
}

// Scan visits every live tuple in storage order; the visitor returns false
// to stop early.
func (h *Heap) Scan(visit func(id RowID, tuple []types.Value) bool) {
	for pi, p := range h.pages {
		if p.live == 0 {
			continue
		}
		for si, row := range p.rows {
			if p.dead[si] {
				continue
			}
			if !visit(RowID{Page: uint32(pi), Slot: uint32(si)}, row) {
				return
			}
		}
	}
}
