package storage

import (
	"math/rand"
	"testing"

	"prefdb/internal/schema"
	"prefdb/internal/types"
)

func benchHeap(b *testing.B, n int) *Heap {
	b.Helper()
	h := NewHeap(intSchema())
	r := rand.New(rand.NewSource(1))
	for i := 0; i < n; i++ {
		if _, err := h.Insert([]types.Value{types.Int(int64(i)), types.Int(int64(r.Intn(n / 4)))}); err != nil {
			b.Fatal(err)
		}
	}
	return h
}

func BenchmarkHeapInsert(b *testing.B) {
	h := NewHeap(intSchema())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := h.Insert([]types.Value{types.Int(int64(i)), types.Int(int64(i))}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHeapScan(b *testing.B) {
	h := benchHeap(b, 10000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		count := 0
		h.Scan(func(RowID, []types.Value) bool { count++; return true })
		if count != 10000 {
			b.Fatal("scan miscount")
		}
	}
}

func BenchmarkHashIndexLookup(b *testing.B) {
	// Deterministic values so the probed key always exists.
	h := NewHeap(intSchema())
	for i := 0; i < 10000; i++ {
		if _, err := h.Insert([]types.Value{types.Int(int64(i)), types.Int(int64(i % 2500))}); err != nil {
			b.Fatal(err)
		}
	}
	ix := NewHashIndex(h, []int{1})
	key := []types.Value{types.Int(17)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(ix.Lookup(key)) == 0 {
			b.Fatal("missing key")
		}
	}
}

func BenchmarkBTreeInsert(b *testing.B) {
	s := schema.New(
		schema.Column{Name: "id", Kind: types.KindInt},
		schema.Column{Name: "v", Kind: types.KindInt},
	)
	h := NewHeap(s)
	ix := NewBTreeIndex(h, 1)
	r := rand.New(rand.NewSource(2))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tuple := []types.Value{types.Int(int64(i)), types.Int(int64(r.Intn(1 << 20)))}
		id, err := h.Insert(tuple)
		if err != nil {
			b.Fatal(err)
		}
		ix.Add(id, tuple)
	}
}

func BenchmarkBTreeLookup(b *testing.B) {
	// Deterministic values so every probed key exists.
	h := NewHeap(intSchema())
	for i := 0; i < 10000; i++ {
		if _, err := h.Insert([]types.Value{types.Int(int64(i)), types.Int(int64(i % 2500))}); err != nil {
			b.Fatal(err)
		}
	}
	ix := NewBTreeIndex(h, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(ix.Lookup(types.Int(int64(i%2500)))) == 0 {
			b.Fatal("missing key")
		}
	}
}

func BenchmarkBTreeRange(b *testing.B) {
	h := benchHeap(b, 10000)
	ix := NewBTreeIndex(h, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		count := 0
		ix.Range(types.Int(100), types.Int(200), true, true, func(RowID) bool {
			count++
			return true
		})
		if count == 0 {
			b.Fatal("empty range")
		}
	}
}
