package qualitative

import (
	"strconv"
	"strings"
	"testing"

	"prefdb/internal/algebra"
	"prefdb/internal/catalog"
	"prefdb/internal/exec"
	"prefdb/internal/schema"
	"prefdb/internal/types"
)

func TestChainCompilesToDecreasingScores(t *testing.T) {
	// Comedy ≻ Drama ≻ Horror.
	o := NewOrder("genres", "genre").Chain(types.Str("Comedy"), types.Str("Drama"), types.Str("Horror"))
	ps, err := o.Compile(0.8)
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 3 {
		t.Fatalf("preferences = %d", len(ps))
	}
	scores := map[string]float64{}
	for _, p := range ps {
		if p.Conf != 0.8 || len(p.On) != 1 || p.On[0] != "genres" {
			t.Errorf("preference shape = %+v", p)
		}
		lit := p.Score.String()
		cond := p.Cond.String()
		switch {
		case strings.Contains(cond, "Comedy"):
			scores["Comedy"] = parseScore(t, lit)
		case strings.Contains(cond, "Drama"):
			scores["Drama"] = parseScore(t, lit)
		case strings.Contains(cond, "Horror"):
			scores["Horror"] = parseScore(t, lit)
		}
	}
	if !(scores["Comedy"] > scores["Drama"] && scores["Drama"] > scores["Horror"]) {
		t.Errorf("scores not decreasing along the chain: %v", scores)
	}
	if scores["Comedy"] != 1 || scores["Horror"] != 0 {
		t.Errorf("extremes = %v", scores)
	}
}

func parseScore(t *testing.T, lit string) float64 {
	t.Helper()
	f, err := strconv.ParseFloat(lit, 64)
	if err != nil {
		t.Fatalf("score literal %q: %v", lit, err)
	}
	return f
}

func TestDAGLevelsShareOnePreference(t *testing.T) {
	// Diamond: A ≻ B, A ≻ C, B ≻ D, C ≻ D: levels {A}, {B,C}, {D}.
	o := NewOrder("genres", "genre").
		Prefer(types.Str("A"), types.Str("B")).
		Prefer(types.Str("A"), types.Str("C")).
		Prefer(types.Str("B"), types.Str("D")).
		Prefer(types.Str("C"), types.Str("D"))
	ps, err := o.Compile(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 3 {
		t.Fatalf("levels = %d, want 3", len(ps))
	}
	// The middle level uses an IN condition over both values.
	mid := ps[1]
	if !strings.Contains(mid.Cond.String(), "IN") {
		t.Errorf("middle level cond = %s", mid.Cond)
	}
	if !strings.Contains(mid.Cond.String(), "'B'") || !strings.Contains(mid.Cond.String(), "'C'") {
		t.Errorf("middle level values = %s", mid.Cond)
	}
}

func TestCycleRejected(t *testing.T) {
	o := NewOrder("g", "x").
		Prefer(types.Str("a"), types.Str("b")).
		Prefer(types.Str("b"), types.Str("c")).
		Prefer(types.Str("c"), types.Str("a"))
	if _, err := o.Compile(1); err == nil {
		t.Error("cyclic order should fail to compile")
	}
	if _, err := NewOrder("g", "x").Compile(1); err == nil {
		t.Error("empty order should fail")
	}
}

func TestDuplicateEdgesIdempotent(t *testing.T) {
	o := NewOrder("g", "x").
		Prefer(types.Str("a"), types.Str("b")).
		Prefer(types.Str("a"), types.Str("b"))
	ps, err := o.Compile(1)
	if err != nil || len(ps) != 2 {
		t.Errorf("ps = %v, %v", ps, err)
	}
}

func TestCompiledPreferencesExecute(t *testing.T) {
	// End to end: a qualitative genre order ranks movies as the relation
	// "Comedy over Drama over Horror" dictates.
	cat := catalog.New()
	s := schema.New(
		schema.Column{Name: "m_id", Kind: types.KindInt},
		schema.Column{Name: "genre", Kind: types.KindString},
	).WithKey("m_id")
	tbl, _ := cat.CreateTable("genres", s)
	tbl.Insert([]types.Value{types.Int(1), types.Str("Horror")})
	tbl.Insert([]types.Value{types.Int(2), types.Str("Comedy")})
	tbl.Insert([]types.Value{types.Int(3), types.Str("Drama")})
	tbl.Insert([]types.Value{types.Int(4), types.Str("Sci-Fi")}) // unordered: stays ⊥

	ps, err := NewOrder("genres", "genre").
		Chain(types.Str("Comedy"), types.Str("Drama"), types.Str("Horror")).
		Compile(0.9)
	if err != nil {
		t.Fatal(err)
	}
	var plan algebra.Node = &algebra.Scan{Table: "genres"}
	for _, p := range ps {
		plan = &algebra.Prefer{P: p, Input: plan}
	}
	plan = &algebra.Rank{By: algebra.ByScore, Input: plan}
	e := exec.New(cat)
	rel, err := e.Run(plan, exec.Native)
	if err != nil {
		t.Fatal(err)
	}
	order := make([]int64, rel.Len())
	for i, row := range rel.Rows {
		order[i] = row.Tuple[0].AsInt()
	}
	want := []int64{2, 3, 1, 4} // Comedy, Drama, Horror, then unscored Sci-Fi
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("rank order = %v, want %v", order, want)
		}
	}
	if rel.Rows[3].SC.Known {
		t.Error("unordered value must stay ⊥ (winnow-style incomparability)")
	}
}
