// Package qualitative compiles qualitative preferences — binary preference
// relations of the form "value a is preferred over value b", the
// representation used by Chomicki-style frameworks and Preference SQL that
// the paper surveys in §II — into the paper's quantitative triples. This
// substantiates the paper's claim that its quantitative model "covers
// earlier works w.r.t. different types of preferences": a strict partial
// order over an attribute's values becomes a set of (σ_{attr∈level},
// score, C) preferences whose scores decrease with the value's depth in
// the order.
package qualitative

import (
	"fmt"
	"sort"

	"prefdb/internal/expr"
	"prefdb/internal/pref"
	"prefdb/internal/prel"
	"prefdb/internal/types"
)

// Order is a strict partial order over the values of one attribute of one
// relation, built from "better ≻ worse" statements.
type Order struct {
	relation string
	attr     string
	// edges maps a value's fingerprint to the fingerprints it dominates.
	edges map[string][]string
	// vals maps fingerprints back to values.
	vals map[string]types.Value
}

// NewOrder starts an empty order over relation.attr.
func NewOrder(relation, attr string) *Order {
	return &Order{
		relation: relation,
		attr:     attr,
		edges:    map[string][]string{},
		vals:     map[string]types.Value{},
	}
}

// Prefer records that better ≻ worse. Duplicate statements are idempotent;
// cycles are detected at Compile time.
func (o *Order) Prefer(better, worse types.Value) *Order {
	b, w := o.intern(better), o.intern(worse)
	for _, existing := range o.edges[b] {
		if existing == w {
			return o
		}
	}
	o.edges[b] = append(o.edges[b], w)
	return o
}

// Chain records a total order best ≻ ... ≻ worst in one call.
func (o *Order) Chain(bestToWorst ...types.Value) *Order {
	for i := 0; i+1 < len(bestToWorst); i++ {
		o.Prefer(bestToWorst[i], bestToWorst[i+1])
	}
	return o
}

func (o *Order) intern(v types.Value) string {
	k := prel.Fingerprint([]types.Value{v})
	if _, ok := o.vals[k]; !ok {
		o.vals[k] = v
	}
	return k
}

// Compile turns the order into quantitative preferences with the given
// confidence: values are ranked by their depth below a maximal element
// (longest path), the shallowest level scoring 1 and deeper levels scoring
// proportionally less; values sharing a level compile into one preference
// with an IN condition. Compile fails on cyclic orders (a ≻ b ≻ a has no
// consistent scores).
func (o *Order) Compile(conf float64) ([]pref.Preference, error) {
	if len(o.vals) == 0 {
		return nil, fmt.Errorf("qualitative: order over %s.%s is empty", o.relation, o.attr)
	}
	depth := map[string]int{}
	state := map[string]int{} // 0 unvisited, 1 in progress, 2 done
	var visit func(k string) (int, error)
	visit = func(k string) (int, error) {
		switch state[k] {
		case 1:
			return 0, fmt.Errorf("qualitative: preference relation over %s.%s is cyclic at %s",
				o.relation, o.attr, o.vals[k])
		case 2:
			return depth[k], nil
		}
		state[k] = 1
		d := 0
		for _, w := range o.edges[k] {
			wd, err := visit(w)
			if err != nil {
				return 0, err
			}
			if wd+1 > d {
				d = wd + 1
			}
		}
		state[k] = 2
		depth[k] = d
		return d, nil
	}
	maxDepth := 0
	keys := make([]string, 0, len(o.vals))
	for k := range o.vals {
		keys = append(keys, k)
	}
	sort.Strings(keys) // deterministic compilation
	for _, k := range keys {
		d, err := visit(k)
		if err != nil {
			return nil, err
		}
		if d > maxDepth {
			maxDepth = d
		}
	}
	// depth counts dominated values below; rank from the top instead:
	// level(v) = maxDepth - depth(v), so maximal elements are level 0.
	levels := make([][]types.Value, maxDepth+1)
	for _, k := range keys {
		lvl := maxDepth - depth[k]
		levels[lvl] = append(levels[lvl], o.vals[k])
	}
	out := make([]pref.Preference, 0, len(levels))
	for lvl, vals := range levels {
		if len(vals) == 0 {
			continue
		}
		score := 1.0
		if maxDepth > 0 {
			score = float64(maxDepth-lvl) / float64(maxDepth)
		}
		var cond expr.Node
		if len(vals) == 1 {
			cond = expr.Bin{Op: expr.OpEq, L: expr.ColRef(o.attr), R: expr.Lit{Val: vals[0]}}
		} else {
			list := make([]expr.Node, len(vals))
			for i, v := range vals {
				list[i] = expr.Lit{Val: v}
			}
			cond = expr.In{X: expr.ColRef(o.attr), List: list}
		}
		out = append(out, pref.Preference{
			Name:  fmt.Sprintf("%s_level%d", o.attr, lvl),
			On:    []string{o.relation},
			Cond:  cond,
			Score: expr.Lit{Val: types.Float(score)},
			Conf:  conf,
		})
	}
	return out, nil
}
