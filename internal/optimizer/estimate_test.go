package optimizer

import (
	"testing"

	"prefdb/internal/algebra"
	"prefdb/internal/expr"
	"prefdb/internal/pref"
	"prefdb/internal/prel"
	"prefdb/internal/schema"
	"prefdb/internal/types"
)

func TestEstimateRows(t *testing.T) {
	o := New(testDB(t))
	movies := &algebra.Scan{Table: "movies"}       // 120 rows
	directors := &algebra.Scan{Table: "directors"} // 10 rows
	if got := o.EstimateRows(movies); got != 120 {
		t.Errorf("scan estimate = %v", got)
	}
	if got := o.EstimateRows(&algebra.Scan{Table: "ghost"}); got != 1000 {
		t.Errorf("unknown table fallback = %v", got)
	}
	// Selection scales by estimated selectivity.
	sel := &algebra.Select{Cond: expr.Eq("genre", types.Str("Comedy")), Input: &algebra.Scan{Table: "genres"}}
	if got := o.EstimateRows(sel); got <= 0 || got >= 120 {
		t.Errorf("select estimate = %v", got)
	}
	// Equi-join ≈ larger input; cross join = product.
	j := &algebra.Join{Cond: expr.Bin{Op: expr.OpEq, L: expr.ColRef("movies.d_id"), R: expr.ColRef("directors.d_id")},
		Left: movies, Right: directors}
	if got := o.EstimateRows(j); got != 120 {
		t.Errorf("equi-join estimate = %v", got)
	}
	cross := &algebra.Join{Left: movies, Right: directors}
	if got := o.EstimateRows(cross); got != 1200 {
		t.Errorf("cross join estimate = %v", got)
	}
	// Set ops.
	u := &algebra.Set{Op: algebra.SetUnion, Left: movies, Right: movies}
	if got := o.EstimateRows(u); got != 240 {
		t.Errorf("union estimate = %v", got)
	}
	inter := &algebra.Set{Op: algebra.SetIntersect, Left: movies, Right: directors}
	if got := o.EstimateRows(inter); got != 10 {
		t.Errorf("intersect estimate = %v", got)
	}
	diff := &algebra.Set{Op: algebra.SetDiff, Left: movies, Right: directors}
	if got := o.EstimateRows(diff); got != 120 {
		t.Errorf("diff estimate = %v", got)
	}
	// Prefer and Rank pass through; TopK caps; Threshold/Skyline shrink.
	p := pref.Constant("p", "movies", expr.TrueLiteral(), 1, 0.5)
	if got := o.EstimateRows(&algebra.Prefer{P: p, Input: movies}); got != 120 {
		t.Errorf("prefer estimate = %v", got)
	}
	if got := o.EstimateRows(&algebra.TopK{K: 10, Input: movies}); got != 10 {
		t.Errorf("topk estimate = %v", got)
	}
	if got := o.EstimateRows(&algebra.TopK{K: 500, Input: directors}); got != 10 {
		t.Errorf("topk above input = %v", got)
	}
	if got := o.EstimateRows(&algebra.Skyline{Input: movies}); got != 40 {
		t.Errorf("skyline estimate = %v", got)
	}
	// Values carries its own cardinality.
	rel := prel.New(schema.New(schema.Column{Name: "x", Kind: types.KindInt}))
	rel.Append(prel.Row{Tuple: []types.Value{types.Int(1)}})
	if got := o.EstimateRows(&algebra.Values{Rel: rel}); got != 1 {
		t.Errorf("values estimate = %v", got)
	}
	// Projection passes through.
	if got := o.EstimateRows(&algebra.Project{Cols: []expr.Col{expr.ColRef("m_id")}, Input: movies}); got != 120 {
		t.Errorf("project estimate = %v", got)
	}
}

func TestRestoreColumnOrderBailsOnUnresolvable(t *testing.T) {
	o := New(testDB(t))
	// A three-way join over unknown tables: reorderJoins leaves it alone
	// because schemas cannot be resolved.
	bad := &algebra.Join{
		Cond: expr.Bin{Op: expr.OpEq, L: expr.ColRef("a.x"), R: expr.ColRef("b.x")},
		Left: &algebra.Join{
			Cond: expr.Bin{Op: expr.OpEq, L: expr.ColRef("a.x"), R: expr.ColRef("c.x")},
			Left: &algebra.Scan{Table: "nosuch1", Alias: "a"}, Right: &algebra.Scan{Table: "nosuch2", Alias: "c"},
		},
		Right: &algebra.Scan{Table: "nosuch3", Alias: "b"},
	}
	opt := o.Optimize(bad)
	if opt == nil {
		t.Fatal("nil plan")
	}
}

func TestOptimizerAblationToggles(t *testing.T) {
	o := New(testDB(t))
	p := pref.Constant("pg", "genres", expr.Eq("genre", types.Str("Comedy")), 1, 0.8)
	plan := &algebra.Select{
		Cond: expr.Cmp("movies.year", expr.OpGe, types.Int(2010)),
		Input: &algebra.Prefer{P: p,
			Input: joinOn(&algebra.Scan{Table: "movies"}, &algebra.Scan{Table: "genres"}, "movies.m_id", "genres.m_id")},
	}
	o.DisableSelectPushdown = true
	o.DisablePreferPushdown = true
	o.DisablePreferReorder = true
	o.DisableJoinReorder = true
	o.DisableProjectionPushdown = true
	opt := o.Optimize(plan)
	if !algebra.Equal(opt, plan) {
		t.Errorf("fully disabled optimizer changed the plan:\n%s\nvs\n%s",
			algebra.Format(opt), algebra.Format(plan))
	}
}
