package optimizer

import (
	"strings"
	"testing"

	"prefdb/internal/algebra"
	"prefdb/internal/catalog"
	"prefdb/internal/datagen"
	"prefdb/internal/expr"
	"prefdb/internal/pref"
	"prefdb/internal/types"
)

// imdbDB is large enough (≈5 000 movies) for the score-cache heuristic's
// row floor; year has a few dozen distinct values, m_id saturates the
// distinct tracker.
func imdbDB(t testing.TB) *catalog.Catalog {
	t.Helper()
	c := catalog.New()
	if _, err := datagen.LoadIMDB(c, datagen.Config{Scale: 0.25, Seed: 7}); err != nil {
		t.Fatal(err)
	}
	return c
}

func findPrefer(t *testing.T, n algebra.Node) *algebra.Prefer {
	t.Helper()
	var found *algebra.Prefer
	algebra.Transform(n, func(x algebra.Node) algebra.Node {
		if p, ok := x.(*algebra.Prefer); ok {
			found = p
		}
		return x
	})
	if found == nil {
		t.Fatalf("no Prefer in plan:\n%s", algebra.Format(n))
	}
	return found
}

// TestScoreCacheAnnotated: a low-cardinality key (year) over a large
// relation gets the cache hint, an ndv estimate, and an EXPLAIN marker.
func TestScoreCacheAnnotated(t *testing.T) {
	c := imdbDB(t)
	o := New(c)
	p := pref.New("recent", "movies", expr.Cmp("year", expr.OpGe, types.Int(2000)), pref.Recency("year", 2011), 0.9)
	out := o.Optimize(&algebra.Prefer{P: p, Input: &algebra.Scan{Table: "movies"}})
	pr := findPrefer(t, out)
	if !pr.CacheHint {
		t.Fatalf("low-ndv prefer not annotated:\n%s", algebra.Format(out))
	}
	if pr.CacheNDV < 1 || pr.CacheNDV > scoreCacheMaxNDV {
		t.Errorf("CacheNDV = %d", pr.CacheNDV)
	}
	if !strings.Contains(algebra.Format(out), "[cache ndv≈") {
		t.Errorf("EXPLAIN misses cache marker:\n%s", algebra.Format(out))
	}
}

// TestScoreCacheRefusals: the heuristic must not annotate when the input
// is small, when the key's cardinality tracker saturated (unknown-large
// ndv), or when a key column cannot be resolved.
func TestScoreCacheRefusals(t *testing.T) {
	big := imdbDB(t)
	small := testDB(t) // 120 movies, below the row floor

	recency := func(on string) pref.Preference {
		return pref.New("recent", on, expr.Cmp("year", expr.OpGe, types.Int(2000)), pref.Recency("year", 2011), 0.9)
	}
	cases := []struct {
		name string
		cat  *catalog.Catalog
		p    pref.Preference
	}{
		{"small-input", small, recency("movies")},
		{"saturated-ndv", big, pref.New("ids", "movies", expr.TrueLiteral(), expr.ColRef("m_id"), 0.9)},
		{"unresolvable-table", big, pref.New("ghost", "nope", expr.TrueLiteral(), pref.Recency("year", 2011), 0.9)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			o := New(tc.cat)
			// Annotate directly: Optimize would reject the unresolvable
			// preference earlier for other reasons.
			out := o.annotateScoreCache(&algebra.Prefer{P: tc.p, Input: &algebra.Scan{Table: "movies"}})
			if pr := findPrefer(t, out); pr.CacheHint {
				t.Errorf("prefer wrongly annotated (ndv≈%d):\n%s", pr.CacheNDV, algebra.Format(out))
			}
		})
	}
}

// TestScoreCacheHintSurvivesRewrites: annotation runs last, and every
// rewrite preserves operator annotations through WithChildren, so a hinted
// prefer above a join keeps its mark after pushdown reshuffles the tree.
func TestScoreCacheHintSurvivesRewrites(t *testing.T) {
	c := imdbDB(t)
	o := New(c)
	p := pref.New("recent", "movies", expr.Cmp("year", expr.OpGe, types.Int(2000)), pref.Recency("year", 2011), 0.9)
	plan := &algebra.TopK{K: 10, By: algebra.ByScore, Input: &algebra.Prefer{P: p, Input: joinOn(
		&algebra.Scan{Table: "movies"}, &algebra.Scan{Table: "genres"}, "movies.m_id", "genres.m_id",
	)}}
	out := o.Optimize(plan)
	if pr := findPrefer(t, out); !pr.CacheHint {
		t.Errorf("hint lost through rewrites:\n%s", algebra.Format(out))
	}
}
