package optimizer

import "prefdb/internal/algebra"

// EstimateRows exposes cardinality estimation to tests.
func (o *Optimizer) EstimateRows(n algebra.Node) float64 { return o.estimateRows(n) }
