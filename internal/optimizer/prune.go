package optimizer

import (
	"strings"

	"prefdb/internal/algebra"
	"prefdb/internal/expr"
)

// pruneColumns implements heuristic 2 (projection pushdown): it inserts a
// narrow projection directly above each base-table scan, keeping only the
// columns referenced anywhere above — by conditions, join predicates,
// preference parts, or the final projection. Scans feeding set operations
// are left untouched (both inputs must keep identical layouts), and plans
// without a final projection (SELECT *) are not pruned.
//
// When the pruned scan sits under a selection, the inserted projection is
// hoisted above it (σ∘π(scan) → π∘σ(scan)): the filter's columns are a
// subset of the kept ones, so semantics are unchanged, the projection now
// materializes only surviving rows, and the selection stays directly over
// the scan — where index access paths, the colstore's zone-map pruning and
// the EXPLAIN segment annotation (§12) all attach.
func (o *Optimizer) pruneColumns(plan algebra.Node) algebra.Node {
	if !hasRootProjection(plan) {
		return plan
	}
	needed := collectNeededColumns(plan)
	protected := scansUnderSetOps(plan)
	inserted := map[*algebra.Project]bool{}
	return algebra.Transform(plan, func(n algebra.Node) algebra.Node {
		if sel, ok := n.(*algebra.Select); ok {
			pr, ok := sel.Input.(*algebra.Project)
			if !ok || !inserted[pr] {
				return n
			}
			hoisted := &algebra.Project{Cols: pr.Cols,
				Input: &algebra.Select{Cond: sel.Cond, Input: pr.Input}}
			inserted[hoisted] = true // stacked selections keep swapping down
			return hoisted
		}
		scan, ok := n.(*algebra.Scan)
		if !ok || protected[scan] {
			return n
		}
		cols := needed[scan.AliasName()]
		if len(cols) == 0 {
			return n // nothing referenced (or only via unqualified names)
		}
		t, err := o.Cat.Table(scan.Table)
		if err != nil {
			return n
		}
		if len(cols) >= t.Schema().Len() {
			return n // no narrowing possible
		}
		// Verify every column exists; bail out otherwise.
		ordered := make([]expr.Col, 0, len(cols))
		for _, c := range t.Schema().Columns {
			name := strings.ToLower(c.Name)
			if cols[name] {
				ordered = append(ordered, expr.Col{Table: scan.AliasName(), Name: name})
			}
		}
		if len(ordered) == 0 || len(ordered) >= t.Schema().Len() {
			return n
		}
		p := &algebra.Project{Cols: ordered, Input: scan}
		inserted[p] = true
		return p
	})
}

func hasRootProjection(plan algebra.Node) bool {
	n := plan
	for {
		switch x := n.(type) {
		case *algebra.TopK, *algebra.Threshold, *algebra.Skyline,
			*algebra.Rank, *algebra.OrderBy, *algebra.Limit:
			n = x.Children()[0]
		case *algebra.Project:
			return true
		default:
			return false
		}
	}
}

// collectNeededColumns gathers, per table alias, the set of column names
// referenced anywhere in the plan. Unqualified references are recorded
// under every alias (conservative).
func collectNeededColumns(plan algebra.Node) map[string]map[string]bool {
	needed := map[string]map[string]bool{}
	aliases := algebra.BaseRelations(plan)
	record := func(c expr.Col) {
		name := strings.ToLower(c.Name)
		if c.Table != "" {
			alias := strings.ToLower(c.Table)
			if needed[alias] == nil {
				needed[alias] = map[string]bool{}
			}
			needed[alias][name] = true
			return
		}
		for a := range aliases {
			if needed[a] == nil {
				needed[a] = map[string]bool{}
			}
			needed[a][name] = true
		}
	}
	recordExpr := func(n expr.Node) {
		for _, c := range expr.ColumnsOf(n) {
			record(c)
		}
	}
	algebra.Walk(plan, func(n algebra.Node) bool {
		switch x := n.(type) {
		case *algebra.Select:
			recordExpr(x.Cond)
		case *algebra.Join:
			recordExpr(x.Cond)
		case *algebra.Project:
			for _, c := range x.Cols {
				record(c)
			}
		case *algebra.Prefer:
			recordExpr(x.P.Cond)
			recordExpr(x.P.Score)
		case *algebra.OrderBy:
			for _, k := range x.Keys {
				record(k.Col)
			}
		case *algebra.Skyline:
			for _, d := range x.Dims {
				record(d.Col)
			}
		}
		return true
	})
	return needed
}

// scansUnderSetOps returns the scan nodes beneath any set operation.
func scansUnderSetOps(plan algebra.Node) map[*algebra.Scan]bool {
	out := map[*algebra.Scan]bool{}
	algebra.Walk(plan, func(n algebra.Node) bool {
		if s, ok := n.(*algebra.Set); ok {
			algebra.Walk(s, func(m algebra.Node) bool {
				if sc, ok := m.(*algebra.Scan); ok {
					out[sc] = true
				}
				return true
			})
			return false
		}
		return true
	})
	return out
}
