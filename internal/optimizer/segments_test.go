package optimizer

import (
	"strings"
	"testing"

	"prefdb/internal/algebra"
	"prefdb/internal/catalog"
	"prefdb/internal/colstore"
	"prefdb/internal/expr"
	"prefdb/internal/schema"
	"prefdb/internal/storage"
	"prefdb/internal/types"
)

// segmentsDB builds a catalog whose "events" table spans three columnar
// segments of sequential ids.
func segmentsDB(t testing.TB) *catalog.Catalog {
	t.Helper()
	c := catalog.New()
	events := schema.New(
		schema.Column{Name: "id", Kind: types.KindInt},
		schema.Column{Name: "year", Kind: types.KindInt},
	).WithKey("id")
	et, err := c.CreateTable("events", events)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3*colstore.SegmentPages*storage.PageSize; i++ {
		err := et.Insert([]types.Value{types.Int(int64(i)), types.Int(int64(1970 + i%42))})
		if err != nil {
			t.Fatal(err)
		}
	}
	return c
}

// TestAnnotateSegments pins the EXPLAIN surface: once a table's segment
// store is built, a filtered scan shows `[segments N skip≈M]` with the
// zone-map estimate; heap-only tables (no store built yet) are untouched.
func TestAnnotateSegments(t *testing.T) {
	cat := segmentsDB(t)
	perSeg := int64(colstore.SegmentPages * storage.PageSize)
	plan := &algebra.Select{
		Cond:  expr.Cmp("id", expr.OpLt, types.Int(perSeg)),
		Input: &algebra.Scan{Table: "events"},
	}
	o := New(cat)

	before := algebra.Format(o.Optimize(plan))
	if strings.Contains(before, "[segments") {
		t.Fatalf("plan annotated before any store was built:\n%s", before)
	}

	et, err := cat.Table("events")
	if err != nil {
		t.Fatal(err)
	}
	et.ColStore()
	after := algebra.Format(o.Optimize(plan))
	if !strings.Contains(after, "[segments 3 skip≈2]") {
		t.Fatalf("plan missing zone-map annotation, got:\n%s", after)
	}
	// The pushed-down int comparison compiles to a direct-column kernel,
	// so the same scan advertises the direct path.
	if !strings.Contains(after, "[direct-col]") {
		t.Fatalf("plan missing direct-col annotation, got:\n%s", after)
	}

	// DML invalidates the store; the stale annotation must disappear until
	// a colstore scan rebuilds it.
	if err := et.Insert([]types.Value{types.Int(perSeg * 4), types.Int(2000)}); err != nil {
		t.Fatal(err)
	}
	stale := algebra.Format(o.Optimize(plan))
	if strings.Contains(stale, "[segments") {
		t.Fatalf("stale store still annotates the plan:\n%s", stale)
	}
}

// TestZoneRowBoundTightensEstimate pins the selectivity side: with a
// built store, the estimated output of a highly selective filtered scan
// must be bounded by the surviving segments' live rows instead of the
// histogram guess alone.
func TestZoneRowBoundTightensEstimate(t *testing.T) {
	cat := segmentsDB(t)
	perSeg := colstore.SegmentPages * storage.PageSize
	o := New(cat)
	sel := &algebra.Select{
		Cond:  expr.Cmp("id", expr.OpLt, types.Int(int64(perSeg))),
		Input: &algebra.Scan{Table: "events"},
	}
	et, err := cat.Table("events")
	if err != nil {
		t.Fatal(err)
	}
	et.ColStore()
	bound, ok := o.zoneRowBound(et, sel)
	if !ok {
		t.Fatal("zoneRowBound reported !ok with a built store and sargable pred")
	}
	if want := float64(perSeg); bound != want {
		t.Fatalf("zoneRowBound = %v, want %v (one surviving segment, empty tail)", bound, want)
	}
	if est := o.estimateRows(sel); est > bound {
		t.Fatalf("estimateRows = %v exceeds the zone bound %v", est, bound)
	}
}
