package optimizer

import (
	"prefdb/internal/algebra"
	"prefdb/internal/catalog"
	"prefdb/internal/expr"
	"prefdb/internal/pref"
)

// Score-cache heuristic thresholds. A prefer operator's ⟨S,C⟩ contribution
// depends only on the attributes its conditional and scoring parts read;
// memoizing it per distinct key pays off exactly when that key set has far
// fewer distinct values than the relation has rows (ndv(attrs) ≪ |R|).
const (
	// scoreCacheMinRows is the smallest estimated input for which caching
	// is considered: below it the memo's bookkeeping costs more than the
	// handful of evaluations it saves.
	scoreCacheMinRows = 1024
	// scoreCacheMinRatio requires |R| ≥ ratio × ndv(attrs), i.e. each
	// distinct key must amortize over at least this many tuples.
	scoreCacheMinRatio = 8
	// scoreCacheMaxNDV caps the estimated key count at the executor's
	// per-worker memo bound — beyond it the memo would degrade anyway.
	scoreCacheMaxNDV = 1 << 16
)

// annotateScoreCache marks every prefer operator whose key attributes have
// low enough cardinality for score memoization to be profitable, recording
// the estimated ndv for EXPLAIN. The executor's CacheAuto mode follows
// these marks.
func (o *Optimizer) annotateScoreCache(n algebra.Node) algebra.Node {
	return algebra.Transform(n, func(x algebra.Node) algebra.Node {
		p, ok := x.(*algebra.Prefer)
		if !ok {
			return x
		}
		ndv, ok := o.scoreCacheNDV(p.P)
		if !ok {
			return x
		}
		rows := o.estimateRows(p.Input)
		if rows < scoreCacheMinRows || float64(ndv)*scoreCacheMinRatio > rows || ndv > scoreCacheMaxNDV {
			return x
		}
		cp := *p
		cp.CacheHint = true
		cp.CacheNDV = ndv
		return &cp
	})
}

// scoreCacheNDV estimates the number of distinct key projections a
// preference produces, as the product of the catalog distinct-counts of
// every column its conditional and scoring parts read. It reports !ok when
// any column cannot be resolved to a target table, has no statistics, or
// saturated the distinct tracker (unknown-large cardinality): the
// heuristic then refuses to cache rather than guess.
func (o *Optimizer) scoreCacheNDV(p pref.Preference) (int, bool) {
	cols := append(expr.ColumnsOf(p.Cond), expr.ColumnsOf(p.Score)...)
	if len(p.On) == 0 {
		return 0, false
	}
	tables := make([]*catalog.Table, 0, len(p.On))
	for _, rel := range p.On {
		t, err := o.Cat.Table(rel)
		if err != nil {
			return 0, false
		}
		tables = append(tables, t)
	}
	type colKey struct {
		table string
		ord   int
	}
	seen := map[colKey]bool{}
	ndv := 1
	for _, c := range cols {
		var owner *catalog.Table
		ord := -1
		for _, t := range tables {
			if idx, err := t.Schema().IndexOf("", c.Name); err == nil {
				owner, ord = t, idx
				break
			}
		}
		if owner == nil {
			return 0, false
		}
		k := colKey{table: owner.Name, ord: ord}
		if seen[k] {
			continue
		}
		seen[k] = true
		st := owner.Stats()
		if ord >= len(st.Columns) {
			return 0, false
		}
		if st.Columns[ord].DistinctSaturated() {
			return 0, false // saturated tracker: cardinality unknown-large
		}
		d := st.Columns[ord].Distinct
		if d < 1 {
			d = 1
		}
		if ndv > scoreCacheMaxNDV/d {
			return scoreCacheMaxNDV + 1, true // overflow guard; caller rejects
		}
		ndv *= d
	}
	return ndv, true
}
