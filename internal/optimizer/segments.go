package optimizer

import (
	"prefdb/internal/algebra"
	"prefdb/internal/catalog"
	"prefdb/internal/colstore"
	"prefdb/internal/expr"
)

// annotateSegments marks filtered scans of tables whose columnar segment
// store is built and current with the zone-map pruning estimate: how many
// segments the store holds and how many the filter's conjuncts disqualify
// on min/max metadata alone (EXPLAIN renders `[segments N skip≈M]`).
// The pass never builds a store itself — compaction happens on the first
// colstore-enabled scan — so plans over heap-only tables are unchanged.
func (o *Optimizer) annotateSegments(n algebra.Node) algebra.Node {
	return algebra.Transform(n, func(x algebra.Node) algebra.Node {
		sel, ok := x.(*algebra.Select)
		if !ok {
			return x
		}
		scan, ok := sel.Input.(*algebra.Scan)
		if !ok {
			return x
		}
		t, err := o.Cat.Table(scan.Table)
		if err != nil {
			return x
		}
		st := t.ColStoreIfBuilt()
		if st == nil {
			return x
		}
		s := t.Schema().Rename(scan.AliasName())
		preds := colstore.PredsFrom(s, expr.Conjuncts(sel.Cond))
		segments, skipped := st.EstimateSkip(preds)
		if segments == 0 {
			return x
		}
		cp := *scan
		cp.SegCount = segments
		cp.SegSkip = skipped
		// Direct-column eligibility: the filter compiled at least one
		// kernel that runs on borrowed segment vectors, so a colstore
		// scan in direct mode evaluates it without materializing rows.
		if c, err := expr.CompileCondition(sel.Cond, s, o.Funcs); err == nil && c.CanFilterCols() {
			cp.DirectCol = true
		}
		return &algebra.Select{Cond: sel.Cond, Input: &cp}
	})
}

// zoneRowBound upper-bounds a filtered scan's output cardinality using
// zone maps: rows the filter can pass live either in a segment its
// conjuncts cannot disqualify or in the unsealed heap tail. The bound is
// exact metadata (not a histogram guess), so estimateRows takes it when
// it is tighter than the statistics-based estimate; it reports !ok when
// the table has no current segment store or no conjunct is prunable.
func (o *Optimizer) zoneRowBound(t *catalog.Table, sel *algebra.Select) (float64, bool) {
	scan, ok := sel.Input.(*algebra.Scan)
	if !ok {
		return 0, false
	}
	st := t.ColStoreIfBuilt()
	if st == nil {
		return 0, false
	}
	preds := colstore.PredsFrom(t.Schema().Rename(scan.AliasName()), expr.Conjuncts(sel.Cond))
	if len(preds) == 0 {
		return 0, false
	}
	surviving := 0
	for _, seg := range st.Segments {
		if seg.Live > 0 && !seg.Skip(preds) {
			surviving += seg.Live
		}
	}
	tail := t.Len() - st.Live()
	if tail < 0 {
		tail = 0
	}
	return float64(surviving + tail), true
}
