package optimizer

import (
	"prefdb/internal/algebra"
	"prefdb/internal/catalog"
	"prefdb/internal/colstore"
	"prefdb/internal/expr"
)

// annotateSegments marks filtered scans of tables whose columnar segment
// store is built and current with the zone-map pruning estimate: how many
// segments the store holds and how many the filter's conjuncts disqualify
// on min/max metadata alone (EXPLAIN renders `[segments N skip≈M]`).
// The pass never builds a store itself — compaction happens on the first
// colstore-enabled scan — so plans over heap-only tables are unchanged.
func (o *Optimizer) annotateSegments(n algebra.Node) algebra.Node {
	return algebra.Transform(n, func(x algebra.Node) algebra.Node {
		sel, ok := x.(*algebra.Select)
		if !ok {
			return x
		}
		scan, ok := sel.Input.(*algebra.Scan)
		if !ok {
			return x
		}
		t, err := o.Cat.Table(scan.Table)
		if err != nil {
			return x
		}
		st := t.ColStoreIfBuilt()
		if st == nil {
			return x
		}
		s := t.Schema().Rename(scan.AliasName())
		preds := colstore.PredsFrom(s, expr.Conjuncts(sel.Cond))
		segments, skipped := st.EstimateSkip(preds)
		if segments == 0 {
			return x
		}
		cp := *scan
		cp.SegCount = segments
		cp.SegSkip = skipped
		// Direct-column eligibility: the filter compiled at least one
		// kernel that runs on borrowed segment vectors, so a colstore
		// scan in direct mode evaluates it without materializing rows.
		if c, err := expr.CompileCondition(sel.Cond, s, o.Funcs); err == nil && c.CanFilterCols() {
			cp.DirectCol = true
		}
		return &algebra.Select{Cond: sel.Cond, Input: &cp}
	})
}

// pullProbeProjects rewrites Join(L, C[π(X)]) — C a σ/λ chain — into
// π'(Join(L, C[X])) when the probe side bottoms out in a scan of a table
// with a built columnar store. The planner narrows every base relation
// right above its scan, but a projection on the probe side of a hash join
// forces the batch path to materialize every probe row just to drop
// columns; pulling it above the join keeps the probe pipeline columnar to
// the hash lookup, so only matching rows become row views, and the
// compensating projection π' (the original join output's column list)
// then narrows the few joined tuples. The rewrite is declined — plan
// unchanged — whenever either side fails to re-resolve or any output
// column reference would be ambiguous against the widened join schema
// (restoreColumnOrder's bail-out), so it can never change the plan's
// output schema or semantics.
func (o *Optimizer) pullProbeProjects(n algebra.Node) algebra.Node {
	return algebra.Transform(n, func(x algebra.Node) algebra.Node {
		j, ok := x.(*algebra.Join)
		if !ok || j.Cond == nil || !hasEquiPair(j.Cond) {
			return x
		}
		right, spliced := spliceProject(j.Right)
		if !spliced {
			return x
		}
		scan := probeScan(right)
		if scan == nil {
			return x
		}
		t, err := o.Cat.Table(scan.Table)
		if err != nil || t.ColStoreIfBuilt() == nil {
			return x
		}
		widened := &algebra.Join{Cond: j.Cond, Left: j.Left, Right: right}
		return o.restoreColumnOrder(j, widened)
	})
}

// spliceProject removes the first projection under a σ/λ chain, exposing
// its input's full column set to the operators above; ok is false when
// the chain holds no projection. Chain nodes are copied, never mutated.
func spliceProject(n algebra.Node) (algebra.Node, bool) {
	switch x := n.(type) {
	case *algebra.Select:
		in, ok := spliceProject(x.Input)
		if !ok {
			return n, false
		}
		cp := *x
		cp.Input = in
		return &cp, true
	case *algebra.Prefer:
		in, ok := spliceProject(x.Input)
		if !ok {
			return n, false
		}
		cp := *x
		cp.Input = in
		return &cp, true
	case *algebra.Project:
		return x.Input, true
	default:
		return n, false
	}
}

// annotateDirectJoin marks equi-joins whose probe (right) side bottoms
// out in a scan of a table with a built, current columnar store: the
// batch path can then hash and confirm the join keys on borrowed segment
// vectors, materializing probe row views only for matching tuples
// (EXPLAIN renders `[direct-join]`). Like annotateSegments the pass never
// builds a store, so the mark reflects what the very next execution will
// actually do.
func (o *Optimizer) annotateDirectJoin(n algebra.Node) algebra.Node {
	return algebra.Transform(n, func(x algebra.Node) algebra.Node {
		j, ok := x.(*algebra.Join)
		if !ok || j.Cond == nil || !hasEquiPair(j.Cond) {
			return x
		}
		scan := probeScan(j.Right)
		if scan == nil {
			return x
		}
		t, err := o.Cat.Table(scan.Table)
		if err != nil || t.ColStoreIfBuilt() == nil {
			return x
		}
		cp := *j
		cp.DirectJoin = true
		return &cp
	})
}

// hasEquiPair reports whether at least one conjunct is a column-column
// equality — the shape the executor splits into hash-join keys.
func hasEquiPair(cond expr.Node) bool {
	for _, c := range expr.Conjuncts(cond) {
		if b, ok := c.(expr.Bin); ok && b.Op == expr.OpEq {
			_, lok := b.L.(expr.Col)
			_, rok := b.R.(expr.Col)
			if lok && rok {
				return true
			}
		}
	}
	return false
}

// probeScan unwraps σ/λ chains to the probe side's base scan, if any.
// A remaining projection in the chain stops the walk: it would force
// row materialization before the join, so the direct mark would lie.
func probeScan(n algebra.Node) *algebra.Scan {
	for {
		switch x := n.(type) {
		case *algebra.Scan:
			return x
		case *algebra.Select:
			n = x.Input
		case *algebra.Prefer:
			n = x.Input
		default:
			return nil
		}
	}
}

// zoneRowBound upper-bounds a filtered scan's output cardinality using
// zone maps: rows the filter can pass live either in a segment its
// conjuncts cannot disqualify or in the unsealed heap tail. The bound is
// exact metadata (not a histogram guess), so estimateRows takes it when
// it is tighter than the statistics-based estimate; it reports !ok when
// the table has no current segment store or no conjunct is prunable.
func (o *Optimizer) zoneRowBound(t *catalog.Table, sel *algebra.Select) (float64, bool) {
	scan, ok := sel.Input.(*algebra.Scan)
	if !ok {
		return 0, false
	}
	st := t.ColStoreIfBuilt()
	if st == nil {
		return 0, false
	}
	preds := colstore.PredsFrom(t.Schema().Rename(scan.AliasName()), expr.Conjuncts(sel.Cond))
	if len(preds) == 0 {
		return 0, false
	}
	surviving := 0
	for _, seg := range st.Segments {
		if seg.Live > 0 && !seg.Skip(preds) {
			surviving += seg.Live
		}
	}
	tail := t.Len() - st.Live()
	if tail < 0 {
		tail = 0
	}
	return float64(surviving + tail), true
}
