// Package optimizer rewrites extended query plans using the algebraic
// properties of the prefer operator (§IV-C) and the heuristic rules of
// §VI-A:
//
//  1. selections are pushed down as far as they can go (split by relation);
//  2. projections are pushed down (column pruning above scans);
//  3. prefer operators are pushed down, just on top of a select or project
//     (Property 4.1);
//  4. a prefer over a binary operator that involves attributes of only one
//     input is pushed to that input (Property 4.4);
//  5. several prefers on the same relation are ordered in ascending
//     selectivity of their conditional parts (Property 4.3).
//
// In addition the optimizer rebuilds join trees left-deep and orders join
// factors by estimated cardinality, standing in for "the join order that
// would be followed by the native query optimizer".
package optimizer

import (
	"context"
	"sort"
	"strings"

	"prefdb/internal/algebra"
	"prefdb/internal/catalog"
	"prefdb/internal/expr"
	"prefdb/internal/pref"
	"prefdb/internal/schema"
)

// Optimizer rewrites plans against catalog statistics.
type Optimizer struct {
	Cat *catalog.Catalog
	// Funcs resolves functions when the optimizer needs to recompute a
	// subtree's schema (join reordering); defaults to the scoring library.
	Funcs *expr.Registry
	// DisableSelectPushdown skips heuristic 1 (ablation experiments).
	DisableSelectPushdown bool
	// DisableProjectionPushdown skips heuristic 2.
	DisableProjectionPushdown bool
	// DisablePreferPushdown skips heuristics 3 and 4.
	DisablePreferPushdown bool
	// DisablePreferReorder skips heuristic 5.
	DisablePreferReorder bool
	// DisableJoinReorder keeps the query's join order.
	DisableJoinReorder bool
	// DisableScoreCache skips the score-cache annotation pass (the
	// executor's CacheAuto mode then never memoizes).
	DisableScoreCache bool
}

// New returns an optimizer over the catalog.
func New(cat *catalog.Catalog) *Optimizer {
	return &Optimizer{Cat: cat, Funcs: pref.Functions()}
}

// Optimize applies all rewrite passes and returns the improved plan; the
// input plan is not modified.
func (o *Optimizer) Optimize(plan algebra.Node) algebra.Node {
	n, _ := o.OptimizeContext(context.Background(), plan)
	return n
}

// OptimizeContext is Optimize under a context: the rewrite passes check
// ctx between passes (each pass is bounded by the plan size, so
// between-pass checkpoints bound the abandon latency) and return ctx's
// error with the best plan so far. The Optimizer itself stays stateless,
// so concurrent queries sharing one Optimizer can carry different
// contexts.
func (o *Optimizer) OptimizeContext(ctx context.Context, plan algebra.Node) (algebra.Node, error) {
	n := plan
	step := func(enabled bool, pass func(algebra.Node) algebra.Node) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		if enabled {
			n = pass(n)
		}
		return nil
	}
	passes := []struct {
		enabled bool
		pass    func(algebra.Node) algebra.Node
	}{
		{!o.DisableSelectPushdown, o.pushSelections},
		{!o.DisablePreferPushdown, o.pushPrefers},
		{!o.DisablePreferReorder, o.orderPreferChains},
		{!o.DisableJoinReorder, o.reorderJoins},
		// Join reordering can open new pushdown opportunities.
		{!o.DisableJoinReorder && !o.DisablePreferPushdown, o.pushPrefers},
		{!o.DisableJoinReorder && !o.DisablePreferReorder, o.orderPreferChains},
		{!o.DisableProjectionPushdown, o.pruneColumns},
		// Late materialization: probe-side projections under an equi-join
		// over a columnar-backed scan are pulled above the join, so the
		// batch path hashes borrowed vectors and materializes only matches.
		{true, o.pullProbeProjects},
		// Annotation passes run last so rewrites cannot drop their marks.
		{!o.DisableScoreCache, o.annotateScoreCache},
		{true, o.annotateSegments},
		{true, o.annotateDirectJoin},
	}
	for _, p := range passes {
		if err := step(p.enabled, p.pass); err != nil {
			return n, err
		}
	}
	return n, nil
}

// --- heuristic 1: selection pushdown ---

func (o *Optimizer) pushSelections(n algebra.Node) algebra.Node {
	return fixpoint(n, o.pushSelectOnce)
}

// fixpoint applies a local rewrite bottom-up until no node changes,
// tracking changes by identity instead of re-rendering plans.
func fixpoint(n algebra.Node, rewrite func(algebra.Node) algebra.Node) algebra.Node {
	for i := 0; i < 64; i++ { // bound: each pass strictly pushes operators down
		changed := false
		next := algebra.Transform(n, func(x algebra.Node) algebra.Node {
			y := rewrite(x)
			if y != x {
				changed = true
			}
			return y
		})
		n = next
		if !changed {
			return n
		}
	}
	return n
}

// pushSelectOnce applies one local selection rewrite.
func (o *Optimizer) pushSelectOnce(n algebra.Node) algebra.Node {
	sel, ok := n.(*algebra.Select)
	if !ok {
		return n
	}
	switch child := sel.Input.(type) {
	case *algebra.Select:
		// Merge cascades: σ_a σ_b = σ_{a∧b}.
		return &algebra.Select{
			Cond:  expr.Bin{Op: expr.OpAnd, L: sel.Cond, R: child.Cond},
			Input: child.Input,
		}
	case *algebra.Prefer:
		// Property 4.1: σ_φ λ_p(R) = λ_p σ_φ(R) (φ never references
		// score/conf — those live outside the expression language).
		return &algebra.Prefer{P: child.P, Input: &algebra.Select{Cond: sel.Cond, Input: child.Input}}
	case *algebra.Join:
		leftRels := algebra.BaseRelations(child.Left)
		rightRels := algebra.BaseRelations(child.Right)
		var toLeft, toRight, stay []expr.Node
		for _, c := range expr.Conjuncts(sel.Cond) {
			switch {
			case expr.RefersOnly(c, leftRels):
				toLeft = append(toLeft, c)
			case expr.RefersOnly(c, rightRels):
				toRight = append(toRight, c)
			default:
				stay = append(stay, c)
			}
		}
		if len(toLeft) == 0 && len(toRight) == 0 {
			return n
		}
		l, r := child.Left, child.Right
		if len(toLeft) > 0 {
			l = &algebra.Select{Cond: expr.AndAll(toLeft), Input: l}
		}
		if len(toRight) > 0 {
			r = &algebra.Select{Cond: expr.AndAll(toRight), Input: r}
		}
		out := algebra.Node(&algebra.Join{Cond: child.Cond, Left: l, Right: r})
		if len(stay) > 0 {
			out = &algebra.Select{Cond: expr.AndAll(stay), Input: out}
		}
		return out
	case *algebra.Set:
		// σ distributes over ∪, ∩ and −: both inputs share the layout.
		// Only safe when the condition resolves on the inputs (same column
		// names); qualify-mismatches keep the select in place.
		if onlyUnqualified(sel.Cond) {
			return &algebra.Set{
				Op:    child.Op,
				Left:  &algebra.Select{Cond: sel.Cond, Input: child.Left},
				Right: &algebra.Select{Cond: sel.Cond, Input: child.Right},
			}
		}
		return n
	default:
		return n
	}
}

func onlyUnqualified(n expr.Node) bool {
	for _, c := range expr.ColumnsOf(n) {
		if c.Table != "" {
			return false
		}
	}
	return true
}

// --- heuristics 3 & 4: prefer pushdown ---

func (o *Optimizer) pushPrefers(n algebra.Node) algebra.Node {
	return fixpoint(n, o.pushPreferOnce)
}

func (o *Optimizer) pushPreferOnce(n algebra.Node) algebra.Node {
	p, ok := n.(*algebra.Prefer)
	if !ok {
		return n
	}
	switch child := p.Input.(type) {
	case *algebra.Join:
		leftRels := algebra.BaseRelations(child.Left)
		rightRels := algebra.BaseRelations(child.Right)
		// Property 4.4: push to the input whose relations cover the
		// preference, provided the other side cannot be affected.
		if p.P.Covers(leftRels) && !touchesAny(p.P, rightRels) {
			return &algebra.Join{Cond: child.Cond, Left: &algebra.Prefer{P: p.P, Input: child.Left}, Right: child.Right}
		}
		if p.P.Covers(rightRels) && !touchesAny(p.P, leftRels) {
			return &algebra.Join{Cond: child.Cond, Left: child.Left, Right: &algebra.Prefer{P: p.P, Input: child.Right}}
		}
		return n
	case *algebra.Set:
		leftRels := algebra.BaseRelations(child.Left)
		rightRels := algebra.BaseRelations(child.Right)
		if p.P.Covers(leftRels) && !touchesAny(p.P, rightRels) {
			return &algebra.Set{Op: child.Op, Left: &algebra.Prefer{P: p.P, Input: child.Left}, Right: child.Right}
		}
		// Pushing right is only safe for union (difference and
		// intersection score from the left input's pairs in left-biased
		// positions; keep conservative).
		if child.Op == algebra.SetUnion && p.P.Covers(rightRels) && !touchesAny(p.P, leftRels) {
			return &algebra.Set{Op: child.Op, Left: child.Left, Right: &algebra.Prefer{P: p.P, Input: child.Right}}
		}
		return n
	default:
		// Heuristic 3 stops prefer just on top of selects, projects and
		// scans: pushing below a select would enlarge the prefer's input.
		return n
	}
}

// touchesAny reports whether any of the preference's target relations is in
// the given set — if so, evaluating the preference on that side would not
// be an identity and the push is unsafe.
func touchesAny(p pref.Preference, rels map[string]bool) bool {
	for _, r := range p.On {
		if rels[strings.ToLower(r)] {
			return true
		}
	}
	return false
}

// --- heuristic 5: prefer ordering by selectivity ---

func (o *Optimizer) orderPreferChains(n algebra.Node) algebra.Node {
	return algebra.Transform(n, func(x algebra.Node) algebra.Node {
		p, ok := x.(*algebra.Prefer)
		if !ok {
			return x
		}
		// Only rewrite at the top of a chain.
		chain := []*algebra.Prefer{p}
		cur := p
		for {
			next, ok := cur.Input.(*algebra.Prefer)
			if !ok {
				break
			}
			chain = append(chain, next)
			cur = next
		}
		if len(chain) < 2 {
			return x
		}
		base := chain[len(chain)-1].Input
		// Ascending selectivity: the most selective conditional part is
		// evaluated first, keeping score relations small (heuristic 5;
		// sound by Property 4.3).
		sort.SliceStable(chain, func(i, j int) bool {
			return o.preferSelectivity(chain[i].P) < o.preferSelectivity(chain[j].P)
		})
		// chain[0] is the most selective and must be evaluated first, i.e.
		// innermost; wrap outwards in ascending-selectivity order.
		out := base
		for i := 0; i < len(chain); i++ {
			out = &algebra.Prefer{P: chain[i].P, Input: out}
		}
		return out
	})
}

// preferSelectivity estimates the fraction of the target relation matched
// by the preference's conditional part.
func (o *Optimizer) preferSelectivity(p pref.Preference) float64 {
	sel := 1.0
	matched := false
	for _, rel := range p.On {
		t, err := o.Cat.Table(rel)
		if err != nil {
			continue
		}
		matched = true
		sel *= t.Selectivity(p.Cond)
	}
	if !matched {
		return 0.5
	}
	return sel
}

// --- join reordering (left-deep, smallest-first) ---

func (o *Optimizer) reorderJoins(n algebra.Node) algebra.Node {
	return algebra.Transform(n, func(x algebra.Node) algebra.Node {
		j, ok := x.(*algebra.Join)
		if !ok {
			return x
		}
		// Only rewrite the topmost join of a join tree (children already
		// transformed; nested joins below will be flattened here).
		factors, preds := flattenJoins(j)
		if len(factors) < 3 {
			return x
		}
		rebuilt := o.buildLeftDeep(factors, preds)
		// Reordering permutes the join product's column order; restore the
		// original layout so the plan's output schema is unchanged.
		return o.restoreColumnOrder(j, rebuilt)
	})
}

type joinPred struct {
	cond expr.Node
	rels map[string]bool
}

// flattenJoins collects the non-join factors and join predicates of a join
// tree.
func flattenJoins(n algebra.Node) ([]algebra.Node, []joinPred) {
	if j, ok := n.(*algebra.Join); ok {
		lf, lp := flattenJoins(j.Left)
		rf, rp := flattenJoins(j.Right)
		preds := append(lp, rp...)
		for _, c := range expr.Conjuncts(j.Cond) {
			preds = append(preds, joinPred{cond: c, rels: expr.Tables(c)})
		}
		return append(lf, rf...), preds
	}
	return []algebra.Node{n}, nil
}

// buildLeftDeep greedily orders factors: start from the smallest estimated
// factor, then repeatedly join the connected factor with the smallest
// estimated size (falling back to cross joins only when necessary).
func (o *Optimizer) buildLeftDeep(factors []algebra.Node, preds []joinPred) algebra.Node {
	type fact struct {
		node algebra.Node
		rels map[string]bool
		rows float64
	}
	facts := make([]*fact, len(factors))
	for i, f := range factors {
		facts[i] = &fact{node: f, rels: algebra.BaseRelations(f), rows: o.estimateRows(f)}
	}
	used := make([]bool, len(facts))
	predUsed := make([]bool, len(preds))

	// Pick the smallest factor first.
	start := 0
	for i := range facts {
		if facts[i].rows < facts[start].rows {
			start = i
		}
	}
	used[start] = true
	current := facts[start].node
	currentRels := map[string]bool{}
	for r := range facts[start].rels {
		currentRels[r] = true
	}

	for picked := 1; picked < len(facts); picked++ {
		// Candidates connected to the current tree by an unused predicate.
		best := -1
		for i := range facts {
			if used[i] {
				continue
			}
			if !connected(currentRels, facts[i].rels, preds, predUsed) {
				continue
			}
			if best < 0 || facts[i].rows < facts[best].rows {
				best = i
			}
		}
		if best < 0 {
			// No connected factor: fall back to the smallest remaining.
			for i := range facts {
				if used[i] {
					continue
				}
				if best < 0 || facts[i].rows < facts[best].rows {
					best = i
				}
			}
		}
		used[best] = true
		// Attach every now-covered predicate as the join condition.
		var conds []expr.Node
		for pi := range preds {
			if predUsed[pi] {
				continue
			}
			needed := preds[pi].rels
			coveredNow := true
			for r := range needed {
				if !currentRels[r] && !facts[best].rels[r] {
					coveredNow = false
					break
				}
			}
			if coveredNow {
				conds = append(conds, preds[pi].cond)
				predUsed[pi] = true
			}
		}
		current = &algebra.Join{Cond: expr.AndAll(conds), Left: current, Right: facts[best].node}
		for r := range facts[best].rels {
			currentRels[r] = true
		}
	}
	// Any leftover predicates (e.g. referencing unqualified columns) become
	// a final selection so no condition is dropped.
	var leftovers []expr.Node
	for pi := range preds {
		if !predUsed[pi] {
			leftovers = append(leftovers, preds[pi].cond)
		}
	}
	if len(leftovers) > 0 {
		return &algebra.Select{Cond: expr.AndAll(leftovers), Input: current}
	}
	return current
}

func connected(current, candidate map[string]bool, preds []joinPred, predUsed []bool) bool {
	for pi, p := range preds {
		if predUsed[pi] || len(p.rels) == 0 {
			continue
		}
		touchesCurrent, touchesCandidate, outside := false, false, false
		for r := range p.rels {
			switch {
			case current[r]:
				touchesCurrent = true
			case candidate[r]:
				touchesCandidate = true
			default:
				outside = true
			}
		}
		if touchesCurrent && touchesCandidate && !outside {
			return true
		}
	}
	return false
}

// estimateRows estimates a subtree's output cardinality from catalog
// statistics.
func (o *Optimizer) estimateRows(n algebra.Node) float64 {
	switch x := n.(type) {
	case *algebra.Scan:
		t, err := o.Cat.Table(x.Table)
		if err != nil {
			return 1000
		}
		return float64(t.Len())
	case *algebra.Select:
		base := o.estimateRows(x.Input)
		if t := singleTableOf(o.Cat, x.Input); t != nil {
			est := base * t.Selectivity(x.Cond)
			// Zone maps give an exact upper bound (surviving segments +
			// heap tail); prefer it when tighter than the histogram guess.
			if bound, ok := o.zoneRowBound(t, x); ok && bound < est {
				est = bound
			}
			return est
		}
		return base / 3
	case *algebra.Prefer, *algebra.Rank:
		return o.estimateRows(n.Children()[0])
	case *algebra.Project:
		return o.estimateRows(x.Input)
	case *algebra.Join:
		l, r := o.estimateRows(x.Left), o.estimateRows(x.Right)
		if x.Cond == nil {
			return l * r
		}
		// Equi-join heuristic: output near the larger input.
		if l > r {
			return l
		}
		return r
	case *algebra.Set:
		l, r := o.estimateRows(x.Left), o.estimateRows(x.Right)
		switch x.Op {
		case algebra.SetUnion:
			return l + r
		case algebra.SetIntersect:
			if l < r {
				return l
			}
			return r
		default:
			return l
		}
	case *algebra.Values:
		return float64(x.Rel.Len())
	case *algebra.TopK:
		k := float64(x.K)
		in := o.estimateRows(x.Input)
		if in < k {
			return in
		}
		return k
	case *algebra.Limit:
		k := float64(x.N)
		in := o.estimateRows(x.Input)
		if in < k {
			return in
		}
		return k
	case *algebra.OrderBy:
		return o.estimateRows(x.Input)
	case *algebra.Threshold, *algebra.Skyline:
		return o.estimateRows(n.Children()[0]) / 3
	default:
		return 1000
	}
}

// singleTableOf returns the catalog table when the subtree scans exactly
// one base relation (so per-column statistics apply).
func singleTableOf(cat *catalog.Catalog, n algebra.Node) *catalog.Table {
	rels := algebra.BaseRelations(n)
	if len(rels) != 1 {
		return nil
	}
	var scanTable string
	algebra.Walk(n, func(x algebra.Node) bool {
		if s, ok := x.(*algebra.Scan); ok {
			scanTable = s.Table
			return false
		}
		return true
	})
	t, err := cat.Table(scanTable)
	if err != nil {
		return nil
	}
	return t
}

// restoreColumnOrder wraps a reordered join tree in a projection that
// re-establishes the original output column order. If either schema cannot
// be resolved (or the order already matches), the rebuilt tree is used (or
// the original kept) as is.
func (o *Optimizer) restoreColumnOrder(original, rebuilt algebra.Node) algebra.Node {
	resolver := &algebra.Resolver{Catalog: o.Cat, Funcs: o.Funcs}
	want, err := resolver.Resolve(original)
	if err != nil {
		return original
	}
	got, err := resolver.Resolve(rebuilt)
	if err != nil {
		return original
	}
	if sameColumnOrder(want, got) {
		return rebuilt
	}
	cols := make([]expr.Col, len(want.Columns))
	for i, c := range want.Columns {
		cols[i] = expr.Col{Table: c.Table, Name: c.Name}
		// Bail out if the reference would be ambiguous in the rebuilt schema.
		if _, err := got.IndexOf(c.Table, c.Name); err != nil {
			return original
		}
	}
	return &algebra.Project{Cols: cols, Input: rebuilt}
}

func sameColumnOrder(a, b *schema.Schema) bool {
	if len(a.Columns) != len(b.Columns) {
		return false
	}
	for i := range a.Columns {
		if !strings.EqualFold(a.Columns[i].Table, b.Columns[i].Table) ||
			!strings.EqualFold(a.Columns[i].Name, b.Columns[i].Name) {
			return false
		}
	}
	return true
}
