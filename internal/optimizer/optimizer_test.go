package optimizer

import (
	"strings"
	"testing"

	"prefdb/internal/algebra"
	"prefdb/internal/catalog"
	"prefdb/internal/exec"
	"prefdb/internal/expr"
	"prefdb/internal/pref"
	"prefdb/internal/schema"
	"prefdb/internal/types"
)

// testDB builds a small movie database with skewed genre frequencies so
// selectivity estimates order preferences deterministically.
func testDB(t testing.TB) *catalog.Catalog {
	t.Helper()
	c := catalog.New()
	movies := schema.New(
		schema.Column{Name: "m_id", Kind: types.KindInt},
		schema.Column{Name: "title", Kind: types.KindString},
		schema.Column{Name: "year", Kind: types.KindInt},
		schema.Column{Name: "duration", Kind: types.KindInt},
		schema.Column{Name: "d_id", Kind: types.KindInt},
	).WithKey("m_id")
	directors := schema.New(
		schema.Column{Name: "d_id", Kind: types.KindInt},
		schema.Column{Name: "director", Kind: types.KindString},
	).WithKey("d_id")
	genres := schema.New(
		schema.Column{Name: "m_id", Kind: types.KindInt},
		schema.Column{Name: "genre", Kind: types.KindString},
	).WithKey("m_id", "genre")
	mt, _ := c.CreateTable("movies", movies)
	dt, _ := c.CreateTable("directors", directors)
	gt, _ := c.CreateTable("genres", genres)
	genreNames := []string{"Drama", "Drama", "Drama", "Drama", "Comedy", "Action"}
	for i := 0; i < 120; i++ {
		mt.Insert([]types.Value{
			types.Int(int64(i)), types.Str("t"), types.Int(int64(1980 + i%40)),
			types.Int(int64(80 + i%80)), types.Int(int64(i % 10)),
		})
		gt.Insert([]types.Value{types.Int(int64(i)), types.Str(genreNames[i%len(genreNames)])})
	}
	for d := 0; d < 10; d++ {
		dt.Insert([]types.Value{types.Int(int64(d)), types.Str("dir")})
	}
	return c
}

func joinOn(l, r algebra.Node, lc, rc string) *algebra.Join {
	return &algebra.Join{
		Cond: expr.Bin{Op: expr.OpEq, L: expr.ColRef(lc), R: expr.ColRef(rc)},
		Left: l, Right: r,
	}
}

func TestSelectionPushdownThroughJoin(t *testing.T) {
	o := New(testDB(t))
	plan := &algebra.Select{
		Cond: expr.Bin{Op: expr.OpAnd,
			L: expr.Cmp("movies.year", expr.OpGe, types.Int(2010)),
			R: expr.Eq("genres.genre", types.Str("Comedy"))},
		Input: joinOn(&algebra.Scan{Table: "movies"}, &algebra.Scan{Table: "genres"}, "movies.m_id", "genres.m_id"),
	}
	opt := o.Optimize(plan)
	f := algebra.Format(opt)
	// The top-level select must be gone; each conjunct sits over its scan.
	if strings.HasPrefix(f, "Select") {
		t.Errorf("selection not pushed:\n%s", f)
	}
	if !strings.Contains(f, "Select((movies.year >= 2010))") || !strings.Contains(f, "Select((genres.genre = 'Comedy'))") {
		t.Errorf("split selections missing:\n%s", f)
	}
}

func TestSelectionPushdownBelowPrefer(t *testing.T) {
	o := New(testDB(t))
	p := pref.Constant("p", "movies", expr.Eq("movies.d_id", types.Int(1)), 1, 0.8)
	plan := &algebra.Select{
		Cond:  expr.Cmp("movies.year", expr.OpGe, types.Int(2010)),
		Input: &algebra.Prefer{P: p, Input: &algebra.Scan{Table: "movies"}},
	}
	opt := o.Optimize(plan)
	// Property 4.1: prefer above select.
	top, ok := opt.(*algebra.Prefer)
	if !ok {
		t.Fatalf("expected Prefer at root:\n%s", algebra.Format(opt))
	}
	if _, ok := top.Input.(*algebra.Select); !ok {
		t.Fatalf("expected Select below Prefer:\n%s", algebra.Format(opt))
	}
}

func TestPreferPushdownThroughJoin(t *testing.T) {
	o := New(testDB(t))
	p := pref.Constant("pg", "genres", expr.Eq("genre", types.Str("Comedy")), 1, 0.8)
	plan := &algebra.Prefer{P: p,
		Input: joinOn(&algebra.Scan{Table: "movies"}, &algebra.Scan{Table: "genres"}, "movies.m_id", "genres.m_id"),
	}
	opt := o.Optimize(plan)
	j, ok := opt.(*algebra.Join)
	if !ok {
		t.Fatalf("expected Join at root:\n%s", algebra.Format(opt))
	}
	if _, ok := j.Right.(*algebra.Prefer); !ok {
		t.Fatalf("prefer not pushed to genres side:\n%s", algebra.Format(opt))
	}
}

func TestMultiRelationalPreferStaysAboveJoin(t *testing.T) {
	o := New(testDB(t))
	p := pref.Preference{Name: "p6", On: []string{"movies", "genres"},
		Cond: expr.Eq("genre", types.Str("Action")), Score: pref.Recency("movies.year", 2011), Conf: 0.8}
	plan := &algebra.Prefer{P: p,
		Input: joinOn(&algebra.Scan{Table: "movies"}, &algebra.Scan{Table: "genres"}, "movies.m_id", "genres.m_id"),
	}
	opt := o.Optimize(plan)
	if _, ok := opt.(*algebra.Prefer); !ok {
		t.Fatalf("multi-relational prefer must stay above join:\n%s", algebra.Format(opt))
	}
}

func TestPreferOrderingBySelectivity(t *testing.T) {
	o := New(testDB(t))
	// Action (1/6) is more selective than Drama (4/6).
	pDrama := pref.Constant("pDrama", "genres", expr.Eq("genre", types.Str("Drama")), 1, 0.8)
	pAction := pref.Constant("pAction", "genres", expr.Eq("genre", types.Str("Action")), 1, 0.8)
	plan := &algebra.Prefer{P: pDrama, Input: &algebra.Prefer{P: pAction, Input: &algebra.Scan{Table: "genres"}}}
	// pAction already innermost: ordering keeps it.
	opt := o.Optimize(plan)
	top := opt.(*algebra.Prefer)
	if top.P.Name != "pDrama" {
		t.Fatalf("order changed unexpectedly:\n%s", algebra.Format(opt))
	}
	// Reversed input gets fixed: the selective one moves innermost.
	plan2 := &algebra.Prefer{P: pAction, Input: &algebra.Prefer{P: pDrama, Input: &algebra.Scan{Table: "genres"}}}
	opt2 := o.Optimize(plan2)
	top2 := opt2.(*algebra.Prefer)
	if top2.P.Name != "pDrama" {
		t.Fatalf("heuristic 5 did not reorder:\n%s", algebra.Format(opt2))
	}
	inner := top2.Input.(*algebra.Prefer)
	if inner.P.Name != "pAction" {
		t.Fatalf("selective prefer should be innermost:\n%s", algebra.Format(opt2))
	}
}

func TestJoinReorderingSmallestFirst(t *testing.T) {
	o := New(testDB(t))
	// directors (10 rows) should start the left-deep chain.
	plan := joinOn(
		joinOn(&algebra.Scan{Table: "movies"}, &algebra.Scan{Table: "genres"}, "movies.m_id", "genres.m_id"),
		&algebra.Scan{Table: "directors"}, "movies.d_id", "directors.d_id")
	opt := o.Optimize(plan)
	// Walk to the leftmost leaf.
	n := algebra.Node(opt)
	for {
		children := n.Children()
		if len(children) == 0 {
			break
		}
		n = children[0]
	}
	scan, ok := n.(*algebra.Scan)
	if !ok || scan.Table != "directors" {
		t.Fatalf("leftmost factor should be directors:\n%s", algebra.Format(opt))
	}
	// No predicate may be lost: result must match the unoptimized plan.
	e := exec.New(testDB(t))
	ref, err := e.Run(plan, exec.Native)
	if err != nil {
		t.Fatal(err)
	}
	got, err := e.Run(opt, exec.Native)
	if err != nil {
		t.Fatal(err)
	}
	if ref.Len() != got.Len() {
		t.Fatalf("reordered join changed cardinality: %d vs %d", ref.Len(), got.Len())
	}
}

func TestProjectionPruning(t *testing.T) {
	o := New(testDB(t))
	plan := &algebra.Project{
		Cols: []expr.Col{expr.ColRef("movies.title")},
		Input: joinOn(&algebra.Scan{Table: "movies"}, &algebra.Scan{Table: "genres"},
			"movies.m_id", "genres.m_id"),
	}
	opt := o.Optimize(plan)
	f := algebra.Format(opt)
	if !strings.Contains(f, "Project(movies.m_id, movies.title)") && !strings.Contains(f, "Project(movies.title, movies.m_id)") {
		t.Errorf("movies scan not pruned:\n%s", f)
	}
	// Semantics preserved.
	e := exec.New(testDB(t))
	ref, _ := e.Run(plan, exec.Native)
	got, err := e.Run(opt, exec.Native)
	if err != nil {
		t.Fatal(err)
	}
	if diff := ref.Diff(got, 1e-9); diff != "" {
		t.Errorf("pruning changed result: %s", diff)
	}
	// Disabled pruning leaves scans bare.
	o2 := New(testDB(t))
	o2.DisableProjectionPushdown = true
	f2 := algebra.Format(o2.Optimize(plan))
	if strings.Count(f2, "Project") != 1 {
		t.Errorf("pruning ran despite being disabled:\n%s", f2)
	}
}

func TestStarQueryNotPruned(t *testing.T) {
	o := New(testDB(t))
	plan := joinOn(&algebra.Scan{Table: "movies"}, &algebra.Scan{Table: "genres"}, "movies.m_id", "genres.m_id")
	opt := o.Optimize(plan)
	if strings.Contains(algebra.Format(opt), "Project") {
		t.Errorf("SELECT * plan must not be pruned:\n%s", algebra.Format(opt))
	}
}

// TestFigure7Example reproduces Example 12 / Fig. 7: selections and prefers
// pushed to relation R, prefers reordered by selectivity.
func TestFigure7Example(t *testing.T) {
	o := New(testDB(t))
	// λp1 λp2 σφ1 over Join(movies, genres): φ1 and p2 involve only movies;
	// p2's condition is more restrictive than p1's.
	p1 := pref.Constant("p1", "movies", expr.Cmp("movies.year", expr.OpGe, types.Int(1980)), 1, 0.8) // matches all
	p2 := pref.Constant("p2", "movies", expr.Eq("movies.year", types.Int(2015)), 1, 0.8)             // 1/40
	plan := &algebra.Prefer{P: p1, Input: &algebra.Prefer{P: p2, Input: &algebra.Select{
		Cond:  expr.Cmp("movies.duration", expr.OpLt, types.Int(100)),
		Input: joinOn(&algebra.Scan{Table: "movies"}, &algebra.Scan{Table: "genres"}, "movies.m_id", "genres.m_id"),
	}}}
	opt := o.Optimize(plan)
	f := algebra.Format(opt)
	// Expected shape: Join at the root; movies side has prefers over select
	// over scan with p2 (restrictive) innermost.
	j, ok := opt.(*algebra.Join)
	if !ok {
		t.Fatalf("expected join at root:\n%s", f)
	}
	side := j.Left
	if _, ok := side.(*algebra.Prefer); !ok {
		side = j.Right
	}
	outer, ok := side.(*algebra.Prefer)
	if !ok {
		t.Fatalf("prefers not pushed to movies side:\n%s", f)
	}
	if outer.P.Name != "p1" {
		t.Fatalf("outer prefer should be p1 (less selective):\n%s", f)
	}
	inner, ok := outer.Input.(*algebra.Prefer)
	if !ok || inner.P.Name != "p2" {
		t.Fatalf("inner prefer should be p2 (more selective):\n%s", f)
	}
	if _, ok := inner.Input.(*algebra.Select); !ok {
		t.Fatalf("selection should sit below the prefers:\n%s", f)
	}
	// Equivalence check.
	e := exec.New(testDB(t))
	ref, err := e.Run(plan, exec.Native)
	if err != nil {
		t.Fatal(err)
	}
	got, err := e.Run(opt, exec.Native)
	if err != nil {
		t.Fatal(err)
	}
	if diff := ref.Diff(got, 1e-9); diff != "" {
		t.Errorf("optimized plan differs: %s", diff)
	}
}

func TestOptimizedEquivalenceAcrossStrategies(t *testing.T) {
	// The optimizer must preserve semantics for every strategy.
	o := New(testDB(t))
	p1 := pref.Constant("p1", "genres", expr.Eq("genre", types.Str("Comedy")), 1, 0.8)
	p2 := pref.New("p2", "movies", expr.Cmp("year", expr.OpGe, types.Int(2000)), pref.Recency("year", 2020), 0.9)
	plan := &algebra.TopK{K: 10, By: algebra.ByScore, Input: &algebra.Project{
		Cols: []expr.Col{expr.ColRef("movies.title"), expr.ColRef("movies.year"), expr.ColRef("genres.genre")},
		Input: &algebra.Prefer{P: p2, Input: &algebra.Prefer{P: p1, Input: &algebra.Select{
			Cond:  expr.Cmp("movies.duration", expr.OpLt, types.Int(150)),
			Input: joinOn(&algebra.Scan{Table: "movies"}, &algebra.Scan{Table: "genres"}, "movies.m_id", "genres.m_id"),
		}}},
	}}
	opt := o.Optimize(plan)
	e := exec.New(testDB(t))
	ref, err := e.Run(plan, exec.Native)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range exec.Strategies() {
		e2 := exec.New(testDB(t))
		got, err := e2.Run(opt, s)
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if diff := ref.Diff(got, 1e-9); diff != "" {
			t.Errorf("%v on optimized plan differs: %s", s, diff)
		}
	}
}

// fanoutDB gives every movie several cast rows, so the join product is much
// larger than the base relation a preference targets.
func fanoutDB(t testing.TB) *catalog.Catalog {
	t.Helper()
	c := testDB(t)
	cast := schema.New(
		schema.Column{Name: "m_id", Kind: types.KindInt},
		schema.Column{Name: "a_id", Kind: types.KindInt},
	).WithKey("m_id", "a_id")
	ct, _ := c.CreateTable("cast", cast)
	for i := 0; i < 120; i++ {
		for a := 0; a < 5; a++ {
			ct.Insert([]types.Value{types.Int(int64(i)), types.Int(int64(a))})
		}
	}
	return c
}

func TestOptimizationReducesMaterialization(t *testing.T) {
	// The point of Fig. 7: pushing a prefer below a fan-out join shrinks the
	// score relations (R_P) materialized under BU/GBU.
	p1 := pref.New("p1", "movies", expr.Cmp("movies.year", expr.OpGe, types.Int(2000)),
		pref.Recency("movies.year", 2020), 0.9)
	baseline := &algebra.Prefer{P: p1,
		Input: joinOn(&algebra.Scan{Table: "movies"}, &algebra.Scan{Table: "cast"}, "movies.m_id", "cast.m_id"),
	}
	o := New(fanoutDB(t))
	opt := o.Optimize(baseline)
	for _, strat := range []exec.Strategy{exec.BU, exec.GBU} {
		eBase := exec.New(fanoutDB(t))
		ref, err := eBase.Run(baseline, strat)
		if err != nil {
			t.Fatal(err)
		}
		eOpt := exec.New(fanoutDB(t))
		got, err := eOpt.Run(opt, strat)
		if err != nil {
			t.Fatal(err)
		}
		if diff := ref.Diff(got, 1e-9); diff != "" {
			t.Fatalf("%v: optimized plan differs: %s", strat, diff)
		}
		// Heuristic 3's goal is "reducing the input size of prefer
		// operators": the pushed prefer reads the 120-row base relation
		// instead of the 600-row join product.
		if eOpt.Stats().PreferEvals >= eBase.Stats().PreferEvals {
			t.Errorf("%v: optimization did not shrink prefer input: %d >= %d",
				strat, eOpt.Stats().PreferEvals, eBase.Stats().PreferEvals)
		}
		if eOpt.Stats().TuplesMaterialized > eBase.Stats().TuplesMaterialized {
			t.Errorf("%v: optimization increased materialization: %d > %d",
				strat, eOpt.Stats().TuplesMaterialized, eBase.Stats().TuplesMaterialized)
		}
	}
}

func TestSelectDistributesOverSetOps(t *testing.T) {
	o := New(testDB(t))
	u := &algebra.Set{Op: algebra.SetUnion,
		Left:  &algebra.Scan{Table: "genres", Alias: "g1"},
		Right: &algebra.Scan{Table: "genres", Alias: "g2"},
	}
	plan := &algebra.Select{Cond: expr.Eq("genre", types.Str("Comedy")), Input: u}
	opt := o.Optimize(plan)
	if _, stillTop := opt.(*algebra.Select); stillTop {
		t.Fatalf("select not distributed over union:\n%s", algebra.Format(opt))
	}
	// Qualified conditions stay put (they would not resolve on both sides).
	plan2 := &algebra.Select{Cond: expr.Eq("g1.genre", types.Str("Comedy")), Input: u}
	opt2 := o.Optimize(plan2)
	if _, stillTop := opt2.(*algebra.Select); !stillTop {
		t.Fatalf("qualified select should stay above union:\n%s", algebra.Format(opt2))
	}
	// Semantics preserved for the distributed case.
	e := exec.New(testDB(t))
	ref, _ := e.Run(plan, exec.Native)
	got, err := e.Run(opt, exec.Native)
	if err != nil {
		t.Fatal(err)
	}
	if diff := ref.Diff(got, 1e-9); diff != "" {
		t.Errorf("distributed select differs: %s", diff)
	}
}

func TestDisableJoinReorder(t *testing.T) {
	o := New(testDB(t))
	o.DisableJoinReorder = true
	plan := joinOn(
		joinOn(&algebra.Scan{Table: "movies"}, &algebra.Scan{Table: "genres"}, "movies.m_id", "genres.m_id"),
		&algebra.Scan{Table: "directors"}, "movies.d_id", "directors.d_id")
	opt := o.Optimize(plan)
	n := algebra.Node(opt)
	for {
		children := n.Children()
		if len(children) == 0 {
			break
		}
		n = children[0]
	}
	if scan, ok := n.(*algebra.Scan); !ok || scan.Table != "movies" {
		t.Fatalf("join order changed despite DisableJoinReorder:\n%s", algebra.Format(opt))
	}
}
