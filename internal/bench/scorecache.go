package bench

import (
	"context"
	"fmt"
	"io"
	"strings"

	"prefdb/internal/engine"
	"prefdb/internal/schema"
	"prefdb/internal/types"
)

// Point is one JSON-serializable measurement emitted by the score-cache
// experiment (benchrunner -json collects them into a file, e.g.
// BENCH_PR3.json).
type Point struct {
	Experiment  string  `json:"experiment"`
	Label       string  `json:"label"`
	Cache       string  `json:"cache,omitempty"`
	TableRows   int     `json:"tableRows"`
	NDV         int     `json:"ndv,omitempty"`
	Selectivity float64 `json:"selectivity"`
	AutoHint    bool    `json:"autoHint,omitempty"`
	Millis      float64 `json:"millis"`
	ResultRows  int     `json:"resultRows"`
	PreferEvals int     `json:"preferEvals"`
	ScoreEvals  int     `json:"scoreEvals"`
	CacheHits   int     `json:"cacheHits,omitempty"`
	CacheMisses int     `json:"cacheMisses,omitempty"`
	// Vectorization fields (E13): execution style, rows per batch, and the
	// number of batches the executor produced ("" / 0 on the row path).
	Batch     string  `json:"batch,omitempty"`
	BatchSize int     `json:"batchSize,omitempty"`
	Batches   int     `json:"batches,omitempty"`
	Speedup   float64 `json:"speedup,omitempty"`
	// Zone-map fields (E14): which storage side served the batch scan and
	// the segment pruning counters ("" / 0 on the heap path).
	Colstore        string `json:"colstore,omitempty"`
	SegmentsScanned int    `json:"segmentsScanned,omitempty"`
	SegmentsSkipped int    `json:"segmentsSkipped,omitempty"`
	// Direct-column fields (E16): predicate family under sweep and the
	// late-materialization counters ("" / 0 off the direct path).
	Predicate        string `json:"predicate,omitempty"`
	ColBatches       int    `json:"colBatches,omitempty"`
	RowsMaterialized int    `json:"rowsMaterialized,omitempty"`
	// Direct-join field (E17): probe-side batches the hash join consumed
	// (0 off the batch join path).
	JoinProbeBatches int `json:"joinProbeBatches,omitempty"`
	// Server-load fields (E15): concurrent client sessions and the
	// throughput / tail-latency profile of the wire-protocol server.
	Sessions  int     `json:"sessions,omitempty"`
	QPS       float64 `json:"qps,omitempty"`
	P50Millis float64 `json:"p50Millis,omitempty"`
	P95Millis float64 `json:"p95Millis,omitempty"`
	P99Millis float64 `json:"p99Millis,omitempty"`
}

// scoreCacheBaseRows sizes the synthetic relation at scale 1.0; the
// default benchrunner scale 0.25 yields 100 000 rows.
const scoreCacheBaseRows = 400_000

// scoreCacheTiers derives the key-cardinality sweep from the table size:
// ~1% of |R| (the cache's sweet spot), ~10%, and all-distinct (the
// adversarial case the heuristic must refuse and forced caching must
// survive within noise of uncached).
func scoreCacheTiers(rows int) []struct {
	Col string
	NDV int
} {
	clamp := func(n, lo int) int {
		if n < lo {
			return lo
		}
		return n
	}
	return []struct {
		Col string
		NDV int
	}{
		{"g_low", clamp(rows/100, 2)},
		{"g_mid", clamp(rows/10, 4)},
		{"g_all", rows},
	}
}

// scoreCacheDB builds the synthetic single-table database: id plus one
// uniformly distributed group column per cardinality tier.
func scoreCacheDB(rows int) (*engine.DB, error) {
	db := engine.Open()
	tiers := scoreCacheTiers(rows)
	cols := []schema.Column{{Name: "id", Kind: types.KindInt}}
	for _, tier := range tiers {
		cols = append(cols, schema.Column{Name: tier.Col, Kind: types.KindInt})
	}
	tbl, err := db.Catalog().CreateTable("items", schema.New(cols...).WithKey("id"))
	if err != nil {
		return nil, err
	}
	for i := 0; i < rows; i++ {
		row := []types.Value{types.Int(int64(i))}
		for _, tier := range tiers {
			row = append(row, types.Int(int64(i%tier.NDV)))
		}
		if err := tbl.Insert(row); err != nil {
			return nil, err
		}
	}
	return db, nil
}

// --- E12: preference score cache (PR 3) ---

// runScoreCache sweeps cache mode × conditional selectivity × key
// cardinality over a prepared top-k preference query. The cached arm of
// the low-cardinality tier should show a multiple fewer score-expression
// evaluations and a wall-clock win; the all-distinct tier bounds the
// forced-cache overhead.
func runScoreCache(ctx context.Context, e *Env, w io.Writer, repeats int) error {
	rows := int(scoreCacheBaseRows * e.Scale)
	if rows < 1000 {
		rows = 1000
	}
	db, err := scoreCacheDB(rows)
	if err != nil {
		return err
	}
	db.Workers = e.Workers
	fmt.Fprintf(w, "synthetic items table: %d rows\n", rows)
	header(w, "ndv", "sel", "cache", "time", "rows", "preferEvals", "scoreEvals", "hits", "misses", "auto-hint")
	for _, tier := range scoreCacheTiers(rows) {
		for _, sel := range []float64{0.1, 0.5, 1.0} {
			cutoff := tier.NDV - int(sel*float64(tier.NDV))
			sql := fmt.Sprintf(`SELECT id FROM items
				PREFERRING %[1]s >= %[2]d SCORE 0.5*recency(%[1]s, %[3]d) + 0.5*around(%[1]s, %[4]d) CONF 0.9 ON items
				USING sum TOP 10 BY score`, tier.Col, cutoff, tier.NDV, tier.NDV/2)
			prep, err := db.Prepare(sql)
			if err != nil {
				return fmt.Errorf("ndv=%d sel=%.1f: %w", tier.NDV, sel, err)
			}
			autoHint := strings.Contains(prep.Plan(), "[cache ndv≈")
			// The auto arm shows the heuristic picking the winning side per
			// regime: it matches `on` where the key cardinality is low and
			// `off` (within noise) where keys are all-distinct.
			for _, cache := range []engine.CacheMode{engine.CacheOff, engine.CacheAuto, engine.CacheOn} {
				m, err := MeasurePrepared(ctx, prep, repeats,
					engine.WithMode(engine.ModeGBU), engine.WithScoreCache(cache))
				if err != nil {
					return fmt.Errorf("ndv=%d sel=%.1f cache=%v: %w", tier.NDV, sel, cache, err)
				}
				fmt.Fprintf(w, "%d\t%.1f\t%v\t%.2fms\t%d\t%d\t%d\t%d\t%d\t%v\n",
					tier.NDV, sel, cache, float64(m.Duration.Microseconds())/1000, m.Rows,
					m.Stats.PreferEvals, m.Stats.ScoreEvals, m.Stats.CacheHits, m.Stats.CacheMisses, autoHint)
				e.RecordPoint(Point{
					Experiment:  "scorecache",
					Label:       fmt.Sprintf("%s ndv=%d sel=%.1f", tier.Col, tier.NDV, sel),
					Cache:       cache.String(),
					TableRows:   rows,
					NDV:         tier.NDV,
					Selectivity: sel,
					AutoHint:    autoHint,
					Millis:      float64(m.Duration.Microseconds()) / 1000,
					ResultRows:  m.Rows,
					PreferEvals: m.Stats.PreferEvals,
					ScoreEvals:  m.Stats.ScoreEvals,
					CacheHits:   m.Stats.CacheHits,
					CacheMisses: m.Stats.CacheMisses,
				})
			}
		}
	}
	return nil
}
