// Package bench contains the experiment harness that regenerates the
// paper's evaluation: the IMDB-1..3 / DBLP-1..3 query workload (Table II),
// and one experiment per reported table or figure (see EXPERIMENTS.md for
// the experiment ↔ paper mapping and the expected result shapes).
package bench

import "fmt"

// Query is one workload query with the properties reported in Table II.
type Query struct {
	// Name is the workload identifier (IMDB-1 ... DBLP-3).
	Name string
	// SQL is the preferential query text.
	SQL string
	// R is the number of joined relations |R|.
	R int
	// Lambda is the number of preferences λ.
	Lambda int
	// P and NP count the relations with and without preferences.
	P, NP int
}

// IMDBQueries returns the movie-database workload.
func IMDBQueries() []Query {
	return []Query{
		{
			Name: "IMDB-1", R: 2, Lambda: 2, P: 2, NP: 0,
			SQL: `SELECT title, year FROM movies
			      JOIN genres ON movies.m_id = genres.m_id
			      WHERE year >= 1990
			      PREFERRING genre = 'Comedy' SCORE 1 CONF 0.9 ON genres,
			                 year >= 2000 SCORE recency(year, 2011) CONF 0.8 ON movies
			      USING sum TOP 10 BY score`,
		},
		{
			Name: "IMDB-2", R: 4, Lambda: 3, P: 3, NP: 1,
			SQL: `SELECT title, director FROM movies
			      JOIN directors ON movies.d_id = directors.d_id
			      JOIN genres ON movies.m_id = genres.m_id
			      JOIN ratings ON movies.m_id = ratings.m_id
			      WHERE year >= 1980
			      PREFERRING genre = 'Drama' SCORE 0.9 CONF 0.8 ON genres,
			                 votes > 500 SCORE linear(rating, 0.1) CONF 0.8 ON ratings,
			                 duration <= 120 SCORE around(duration, 120) CONF 0.5 ON movies
			      USING sum TOP 20 BY score`,
		},
		{
			Name: "IMDB-3", R: 4, Lambda: 2, P: 2, NP: 2,
			SQL: `SELECT title, actor FROM movies
			      JOIN cast ON movies.m_id = cast.m_id
			      JOIN actors ON cast.a_id = actors.a_id
			      JOIN genres ON movies.m_id = genres.m_id
			      WHERE year >= 2000
			      PREFERRING genre = 'Action' SCORE recency(year, 2011) CONF 0.8 ON (movies, genres),
			                 genre = 'Drama' SCORE 1 CONF 0.6 ON genres
			      USING sum THRESHOLD conf >= 0.6`,
		},
	}
}

// DBLPQueries returns the bibliography workload.
func DBLPQueries() []Query {
	return []Query{
		{
			Name: "DBLP-1", R: 2, Lambda: 2, P: 1, NP: 1,
			SQL: `SELECT title, name FROM publications
			      JOIN conferences ON publications.p_id = conferences.p_id
			      PREFERRING name = 'ICDE' SCORE 1 CONF 0.9 ON conferences,
			                 year >= 2000 SCORE recency(year, 2011) CONF 0.8 ON conferences
			      USING sum TOP 10 BY score`,
		},
		{
			Name: "DBLP-2", R: 3, Lambda: 2, P: 2, NP: 1,
			SQL: `SELECT title, name FROM publications
			      JOIN pub_authors ON publications.p_id = pub_authors.p_id
			      JOIN authors ON pub_authors.a_id = authors.a_id
			      PREFERRING pub_type = 'article' SCORE 0.8 CONF 0.9 ON publications,
			                 pub_authors.a_id < 100 SCORE 1 CONF 0.7 ON pub_authors
			      USING sum TOP 25 BY score`,
		},
		{
			Name: "DBLP-3", R: 3, Lambda: 2, P: 1, NP: 2,
			SQL: `SELECT title FROM publications
			      JOIN citations ON publications.p_id = citations.p2_id
			      JOIN conferences ON publications.p_id = conferences.p_id
			      WHERE year >= 1990
			      PREFERRING name IN ('SIGMOD', 'VLDB', 'ICDE') SCORE 1 CONF 0.8 ON conferences,
			                 year >= 2005 SCORE recency(year, 2011) CONF 0.9 ON conferences
			      USING max SKYLINE`,
		},
	}
}

// AllQueries returns the full six-query workload.
func AllQueries() []Query {
	return append(IMDBQueries(), DBLPQueries()...)
}

// FindQuery resolves a workload query by name.
func FindQuery(name string) (Query, error) {
	for _, q := range AllQueries() {
		if q.Name == name {
			return q, nil
		}
	}
	return Query{}, fmt.Errorf("bench: unknown workload query %q", name)
}
