package bench

import (
	"context"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"prefdb/internal/engine"
	"prefdb/internal/server"
	"prefdb/internal/wire"
)

// serverLoadSessions is the concurrency sweep: how many client sessions
// hammer the server at once. The interesting transitions are 1→4 (the
// executor pool absorbs the added sessions) and beyond GOMAXPROCS (the
// admission queue starts to matter and tail latency grows while
// throughput plateaus).
var serverLoadSessions = []int{1, 2, 4, 8, 16}

// serverLoadQueries is the per-session statement count at repeats=1;
// repeats multiplies it. Small enough for a CI smoke, large enough that
// percentiles are not pure noise.
const serverLoadQueries = 30

// --- E15: multi-session server load (PR 7) ---

// runServerLoad starts an in-process prefdbserver over the shared IMDB
// database and drives it with S concurrent client sessions, each running
// a closed loop of preference queries over its own wire connection. For
// each S it reports aggregate throughput and the p50/p95/p99 statement
// latency. Expected shape: throughput scales with S until the executor
// saturates GOMAXPROCS, then the server-wide admission queue holds
// throughput flat while p95/p99 grow with queue depth — the wire layer
// adds encode/decode work per row but no extra materialization, since
// results stream in bounded batches.
func runServerLoad(ctx context.Context, e *Env, w io.Writer, repeats int) error {
	db, err := e.IMDB()
	if err != nil {
		return err
	}
	srv := server.New(db, server.Options{})
	if err := srv.Listen(); err != nil {
		return err
	}
	serveDone := make(chan struct{})
	go func() { defer close(serveDone); _ = srv.Serve() }()
	defer func() { _ = srv.Close(); <-serveDone }()
	addr := srv.Addr().String()

	sql := `SELECT title, year FROM movies
		PREFERRING year >= 2000 SCORE recency(year, 2011) CONF 0.9 ON movies
		USING sum TOP 20 BY score`
	perSession := serverLoadQueries * repeats

	header(w, "sessions", "stmts", "elapsed", "qps", "p50", "p95", "p99")
	for _, sessions := range serverLoadSessions {
		latencies := make([]time.Duration, 0, sessions*perSession)
		var (
			mu      sync.Mutex
			wg      sync.WaitGroup
			loadErr error
		)
		start := time.Now()
		for s := 0; s < sessions; s++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				c, err := wire.Dial(addr, wire.WithSessionDefaults(engine.WithMode(engine.ModeGBU)))
				if err != nil {
					mu.Lock()
					if loadErr == nil {
						loadErr = err
					}
					mu.Unlock()
					return
				}
				defer c.Close()
				local := make([]time.Duration, 0, perSession)
				for i := 0; i < perSession; i++ {
					t0 := time.Now()
					if _, err := c.QueryContext(ctx, sql); err != nil {
						mu.Lock()
						if loadErr == nil {
							loadErr = err
						}
						mu.Unlock()
						return
					}
					local = append(local, time.Since(t0))
				}
				mu.Lock()
				latencies = append(latencies, local...)
				mu.Unlock()
			}()
		}
		wg.Wait()
		elapsed := time.Since(start)
		if loadErr != nil {
			return fmt.Errorf("sessions=%d: %w", sessions, loadErr)
		}
		total := len(latencies)
		qps := float64(total) / elapsed.Seconds()
		p50 := percentile(latencies, 0.50)
		p95 := percentile(latencies, 0.95)
		p99 := percentile(latencies, 0.99)
		fmt.Fprintf(w, "%d\t%d\t%.2fs\t%.0f\t%.2fms\t%.2fms\t%.2fms\n",
			sessions, total, elapsed.Seconds(), qps,
			millis(p50), millis(p95), millis(p99))
		e.RecordPoint(Point{
			Experiment: "serverload",
			Label:      fmt.Sprintf("sessions=%d", sessions),
			Sessions:   sessions,
			ResultRows: total,
			Millis:     elapsed.Seconds() * 1000,
			QPS:        qps,
			P50Millis:  millis(p50),
			P95Millis:  millis(p95),
			P99Millis:  millis(p99),
		})
	}
	return nil
}

// percentile returns the p-quantile of the sample by nearest-rank on the
// sorted latencies (destructive: sorts in place).
func percentile(d []time.Duration, p float64) time.Duration {
	if len(d) == 0 {
		return 0
	}
	sort.Slice(d, func(i, j int) bool { return d[i] < d[j] })
	idx := int(p * float64(len(d)-1))
	return d[idx]
}

func millis(d time.Duration) float64 {
	return float64(d.Microseconds()) / 1000
}
