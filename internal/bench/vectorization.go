package bench

import (
	"context"
	"fmt"
	"io"

	"prefdb/internal/engine"
	"prefdb/internal/schema"
	"prefdb/internal/types"
)

// vectorBaseRows sizes the synthetic relation at scale 1.0; the default
// benchrunner scale 0.25 yields 100 000 rows.
const vectorBaseRows = 400_000

// vectorBatchSizes is the rows-per-batch sweep (the default block size is
// 1024); the row-at-a-time arm is reported separately as the baseline.
var vectorBatchSizes = []int{64, 256, 1024, 4096}

// vectorDB builds the synthetic single-table database for the
// vectorization sweep: a key plus a year column the preference scores.
// The year distribution is deterministic and uniform over 1970..2011, so
// the preference's conditional part (year >= 2000) accepts a fixed
// fraction regardless of the WHERE selectivity under sweep.
func vectorDB(rows int) (*engine.DB, error) {
	db := engine.Open()
	tbl, err := db.Catalog().CreateTable("events", schema.New(
		schema.Column{Name: "id", Kind: types.KindInt},
		schema.Column{Name: "year", Kind: types.KindInt},
	).WithKey("id"))
	if err != nil {
		return nil, err
	}
	for i := 0; i < rows; i++ {
		year := 1970 + (i*37)%42
		if err := tbl.Insert([]types.Value{types.Int(int64(i)), types.Int(int64(year))}); err != nil {
			return nil, err
		}
	}
	return db, nil
}

// --- E13: vectorized batch execution (PR 4) ---

// runVectorization sweeps execution style (row-at-a-time vs batched at
// several block sizes) × WHERE selectivity over a filter→prefer→top-k
// query, the fused-kernel shape the batch executor specializes. Expected
// shape: throughput rises with the batch size and plateaus around the
// default block (1024); the win is the per-row closure dispatch and
// scratch allocation the batch path amortizes, so it holds across
// selectivities. The score cache stays off so the sweep isolates the
// execution style.
func runVectorization(ctx context.Context, e *Env, w io.Writer, repeats int) error {
	rows := int(vectorBaseRows * e.Scale)
	if rows < 1000 {
		rows = 1000
	}
	db, err := vectorDB(rows)
	if err != nil {
		return err
	}
	db.Workers = e.Workers
	fmt.Fprintf(w, "synthetic events table: %d rows\n", rows)
	header(w, "sel", "batch", "time", "rows", "scanned", "preferEvals", "batches", "speedup-vs-rows")
	for _, sel := range []float64{0.01, 0.5, 0.99} {
		cutoff := int(sel * float64(rows))
		sql := fmt.Sprintf(`SELECT id FROM events
			WHERE id <= %d
			PREFERRING year >= 2000 SCORE recency(year, 2011) CONF 0.9 ON events
			USING sum TOP 10 BY score`, cutoff)
		prep, err := db.Prepare(sql)
		if err != nil {
			return fmt.Errorf("sel=%g: %w", sel, err)
		}
		arms := []struct {
			label string
			opts  []engine.QueryOption
			size  int
		}{{label: "rows", opts: []engine.QueryOption{engine.WithBatch(engine.BatchOff)}}}
		for _, size := range vectorBatchSizes {
			arms = append(arms, struct {
				label string
				opts  []engine.QueryOption
				size  int
			}{
				label: fmt.Sprintf("batch=%d", size),
				opts:  []engine.QueryOption{engine.WithBatch(engine.BatchOn), engine.WithBatchSize(size)},
				size:  size,
			})
		}
		baseline := 0.0
		for _, arm := range arms {
			opts := append([]engine.QueryOption{
				engine.WithMode(engine.ModeNative), engine.WithScoreCache(engine.CacheOff),
			}, arm.opts...)
			m, err := MeasurePrepared(ctx, prep, repeats, opts...)
			if err != nil {
				return fmt.Errorf("sel=%g %s: %w", sel, arm.label, err)
			}
			ms := float64(m.Duration.Microseconds()) / 1000
			speedup := 0.0
			if arm.label == "rows" {
				baseline = ms
			} else if ms > 0 {
				speedup = baseline / ms
			}
			speedupCell := "–"
			if speedup > 0 {
				speedupCell = fmt.Sprintf("%.2fx", speedup)
			}
			fmt.Fprintf(w, "%.2f\t%s\t%.2fms\t%d\t%d\t%d\t%d\t%s\n",
				sel, arm.label, ms, m.Rows, m.Stats.RowsScanned, m.Stats.PreferEvals, m.Stats.Batches, speedupCell)
			e.RecordPoint(Point{
				Experiment:  "vectorization",
				Label:       fmt.Sprintf("sel=%.2f %s", sel, arm.label),
				TableRows:   rows,
				Selectivity: sel,
				Millis:      ms,
				ResultRows:  m.Rows,
				PreferEvals: m.Stats.PreferEvals,
				ScoreEvals:  m.Stats.ScoreEvals,
				Batch:       map[bool]string{true: "on", false: "off"}[arm.size > 0],
				BatchSize:   arm.size,
				Batches:     m.Stats.Batches,
				Speedup:     speedup,
			})
		}
	}
	return nil
}
