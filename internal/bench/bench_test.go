package bench

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"prefdb/internal/engine"
)

// tinyEnv keeps package tests fast: ~400 movies / ~400 papers.
func tinyEnv() *Env { return NewEnv(0.02) }

func TestWorkloadQueriesRun(t *testing.T) {
	e := tinyEnv()
	for _, q := range AllQueries() {
		db, err := e.DBFor(q)
		if err != nil {
			t.Fatal(err)
		}
		res, err := db.Query(q.SQL, engine.ModeGBU)
		if err != nil {
			t.Fatalf("%s: %v", q.Name, err)
		}
		if res.Rel == nil {
			t.Fatalf("%s: nil result", q.Name)
		}
	}
}

func TestWorkloadModesAgree(t *testing.T) {
	e := tinyEnv()
	for _, q := range AllQueries() {
		db, err := e.DBFor(q)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := db.Query(q.SQL, engine.ModeNative)
		if err != nil {
			t.Fatalf("%s native: %v", q.Name, err)
		}
		for _, m := range ReportModes() {
			res, err := db.Query(q.SQL, m)
			if err != nil {
				t.Fatalf("%s %v: %v", q.Name, m, err)
			}
			if ref.Rel.Len() != res.Rel.Len() {
				t.Errorf("%s: %v cardinality %d differs from native %d", q.Name, m, res.Rel.Len(), ref.Rel.Len())
			}
		}
	}
}

func TestFindQuery(t *testing.T) {
	q, err := FindQuery("IMDB-2")
	if err != nil || q.Lambda != 3 {
		t.Errorf("FindQuery = %+v, %v", q, err)
	}
	if _, err := FindQuery("IMDB-9"); err == nil {
		t.Error("unknown query should error")
	}
}

func TestMeasureAndCompare(t *testing.T) {
	e := tinyEnv()
	db, err := e.IMDB()
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	m, err := Measure(ctx, db, IMDBQueries()[0].SQL, engine.ModeGBU, 2)
	if err != nil {
		t.Fatal(err)
	}
	if m.Duration <= 0 || m.Rows == 0 {
		t.Errorf("measurement = %+v", m)
	}
	ms, err := CompareModes(ctx, db, IMDBQueries()[0].SQL, ReportModes(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != len(ReportModes()) {
		t.Errorf("measurements = %d", len(ms))
	}
	if s := SummarizeStats(ms); !strings.Contains(s, "gbu") {
		t.Errorf("summary = %q", s)
	}
	// Invalid SQL propagates.
	if _, err := Measure(ctx, db, "SELECT nope FROM movies", engine.ModeGBU, 1); err == nil {
		t.Error("bad query should error")
	}
	// A canceled context aborts the measurement with the lifecycle sentinel.
	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Measure(canceled, db, IMDBQueries()[0].SQL, engine.ModeGBU, 1); err == nil {
		t.Error("canceled context should abort the measurement")
	}
}

func TestAllExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow")
	}
	e := tinyEnv()
	for _, ex := range Experiments() {
		ex := ex
		t.Run(ex.ID, func(t *testing.T) {
			var buf bytes.Buffer
			if err := ex.Run(context.Background(), e, &buf, 1); err != nil {
				t.Fatalf("%s: %v", ex.ID, err)
			}
			if buf.Len() == 0 {
				t.Fatalf("%s produced no output", ex.ID)
			}
			lines := strings.Count(buf.String(), "\n")
			if lines < 2 {
				t.Errorf("%s output too small:\n%s", ex.ID, buf.String())
			}
		})
	}
}

func TestFindExperiment(t *testing.T) {
	ex, err := FindExperiment("workload")
	if err != nil || ex.ID != "workload" {
		t.Errorf("FindExperiment = %+v, %v", ex, err)
	}
	if _, err := FindExperiment("nope"); err == nil {
		t.Error("unknown experiment should error")
	}
	// IDs are unique.
	seen := map[string]bool{}
	for _, ex := range Experiments() {
		if seen[ex.ID] {
			t.Errorf("duplicate experiment id %q", ex.ID)
		}
		seen[ex.ID] = true
		if ex.Title == "" || ex.Paper == "" || ex.Run == nil {
			t.Errorf("experiment %q incomplete", ex.ID)
		}
	}
}

func TestQueryWithNPreferences(t *testing.T) {
	e := tinyEnv()
	db, err := e.IMDB()
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{1, 3, 16} {
		sql := QueryWithNPreferences(n)
		if got := strings.Count(sql, "ON genres"); got != n {
			t.Errorf("λ=%d: %d preferences in SQL", n, got)
		}
		if _, err := db.Query(sql, engine.ModeGBU); err != nil {
			t.Errorf("λ=%d: %v", n, err)
		}
	}
}

func TestPluginNaiveDegradesWithLambda(t *testing.T) {
	// The paper's headline shape: the naive plug-in issues λ+1 native
	// queries while GBU's count stays flat in λ.
	e := tinyEnv()
	db, err := e.IMDB()
	if err != nil {
		t.Fatal(err)
	}
	calls := func(mode engine.Mode, lambda int) int {
		res, err := db.Query(QueryWithNPreferences(lambda), mode)
		if err != nil {
			t.Fatal(err)
		}
		return res.Stats.NativeCalls
	}
	if n1, n8 := calls(engine.ModePluginNaive, 1), calls(engine.ModePluginNaive, 8); n8-n1 != 7 {
		t.Errorf("plugin-naive calls: λ=1→%d, λ=8→%d", n1, n8)
	}
	if g1, g8 := calls(engine.ModeGBU, 1), calls(engine.ModeGBU, 8); g8 != g1 {
		t.Errorf("gbu calls should be flat: λ=1→%d, λ=8→%d", g1, g8)
	}
}
