package bench

import (
	"context"
	"fmt"
	"io"

	"prefdb/internal/engine"
)

// zoneBaseRows sizes the largest synthetic relation at scale 1.0 (the
// paper's §VII data-size axis stretched to 10M rows); the |R| sweep runs
// the experiment at 1%, 10% and 100% of this scaled figure.
const zoneBaseRows = 10_000_000

// zoneSelectivities is the WHERE-clause sweep. The two low points are
// where zone-map pruning pays: with sequential ids the qualifying rows
// cluster in a handful of segments and every other segment is skipped on
// metadata alone.
var zoneSelectivities = []float64{0.001, 0.01, 0.1, 0.5}

// --- E14: zone-map segment pruning (PR 6) ---

// runZoneMap sweeps |R| × WHERE selectivity over the same
// scan→filter→prefer→top-k shape as E13, comparing the heap batch path
// against the columnar segment store. The events table's ids are
// sequential, so segment zone maps on id partition the key space exactly
// and a `id <= cutoff` conjunct disqualifies every segment past the
// cutoff before any kernel runs. Expected shape: at selectivity ≤0.01
// the colstore arm skips nearly all segments and wins by a multiple;
// at 0.5 the two arms converge since half the data must be touched
// either way. The score cache stays off so the sweep isolates storage.
func runZoneMap(ctx context.Context, e *Env, w io.Writer, repeats int) error {
	maxRows := int(zoneBaseRows * e.Scale)
	if maxRows < 4000 {
		maxRows = 4000
	}
	header(w, "|R|", "sel", "store", "time", "rows", "scanned", "segments", "skipped", "speedup-vs-heap")
	for _, rows := range []int{maxRows / 100, maxRows / 10, maxRows} {
		if rows < 1000 {
			rows = 1000
		}
		db, err := vectorDB(rows)
		if err != nil {
			return err
		}
		db.Workers = e.Workers
		// Warm the segment store so the sweep measures scans, not the
		// one-time row→column compaction (amortized across every query
		// until the next DML invalidates the table version).
		if t, tErr := db.Catalog().Table("events"); tErr == nil {
			t.ColStore()
		}
		for _, sel := range zoneSelectivities {
			cutoff := int(sel * float64(rows))
			sql := fmt.Sprintf(`SELECT id FROM events
				WHERE id <= %d
				PREFERRING year >= 2000 SCORE recency(year, 2011) CONF 0.9 ON events
				USING sum TOP 10 BY score`, cutoff)
			prep, err := db.Prepare(sql)
			if err != nil {
				return fmt.Errorf("rows=%d sel=%g: %w", rows, sel, err)
			}
			baseline := 0.0
			for _, arm := range []struct {
				label string
				mode  engine.ColstoreMode
			}{{"heap", engine.ColstoreOff}, {"colstore", engine.ColstoreOn}} {
				m, err := MeasurePrepared(ctx, prep, repeats,
					engine.WithMode(engine.ModeNative), engine.WithScoreCache(engine.CacheOff),
					engine.WithBatch(engine.BatchOn), engine.WithColstore(arm.mode))
				if err != nil {
					return fmt.Errorf("rows=%d sel=%g %s: %w", rows, sel, arm.label, err)
				}
				ms := float64(m.Duration.Microseconds()) / 1000
				speedup := 0.0
				if arm.label == "heap" {
					baseline = ms
				} else if ms > 0 {
					speedup = baseline / ms
				}
				speedupCell := "–"
				if speedup > 0 {
					speedupCell = fmt.Sprintf("%.2fx", speedup)
				}
				fmt.Fprintf(w, "%d\t%.3f\t%s\t%.2fms\t%d\t%d\t%d\t%d\t%s\n",
					rows, sel, arm.label, ms, m.Rows, m.Stats.RowsScanned,
					m.Stats.SegmentsScanned, m.Stats.SegmentsSkipped, speedupCell)
				e.RecordPoint(Point{
					Experiment:      "zonemap",
					Label:           fmt.Sprintf("rows=%d sel=%.3f %s", rows, sel, arm.label),
					TableRows:       rows,
					Selectivity:     sel,
					Millis:          ms,
					ResultRows:      m.Rows,
					PreferEvals:     m.Stats.PreferEvals,
					ScoreEvals:      m.Stats.ScoreEvals,
					Batch:           "on",
					Batches:         m.Stats.Batches,
					Speedup:         speedup,
					Colstore:        arm.mode.String(),
					SegmentsScanned: m.Stats.SegmentsScanned,
					SegmentsSkipped: m.Stats.SegmentsSkipped,
				})
			}
		}
	}
	return nil
}
