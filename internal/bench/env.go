package bench

import (
	"context"
	"fmt"
	"math"
	"strings"
	"time"

	"prefdb/internal/datagen"
	"prefdb/internal/engine"
	"prefdb/internal/exec"
)

// Env lazily materializes the benchmark databases at a given scale so
// several experiments can share one load.
type Env struct {
	// Scale is the datagen scale factor (1.0 ≈ 20k movies / 20k papers).
	Scale float64
	// Seed drives data generation.
	Seed int64
	// Workers is the executor pool width handed to the databases
	// (0 = GOMAXPROCS, 1 = sequential). Set it before the first IMDB/DBLP
	// call; it is also applied to already-loaded databases.
	Workers int

	// Points collects the JSON measurements experiments record via
	// RecordPoint (benchrunner -json writes them out). Experiments run
	// sequentially, so no locking.
	Points []Point

	imdb      *engine.DB
	imdbSizes datagen.Sizes
	dblp      *engine.DB
	dblpSizes datagen.Sizes
}

// RecordPoint appends one JSON measurement to the run's collection.
func (e *Env) RecordPoint(p Point) {
	// Derived ratios are rounded at the recording boundary so the JSON
	// stays human-diffable (1.73, not 1.7299999999999998); raw timings
	// keep full precision.
	p.Speedup = Round3(p.Speedup)
	e.Points = append(e.Points, p)
}

// Round3 rounds to 3 decimals, the precision the bench JSON reports
// derived ratios at.
func Round3(v float64) float64 { return math.Round(v*1000) / 1000 }

// NewEnv returns an environment at the given scale with the default seed.
func NewEnv(scale float64) *Env { return &Env{Scale: scale, Seed: 42} }

// IMDB returns (loading on first use) the movie database.
func (e *Env) IMDB() (*engine.DB, error) {
	if e.imdb == nil {
		db := engine.Open()
		sizes, err := datagen.LoadIMDB(db.Catalog(), datagen.Config{Scale: e.Scale, Seed: e.Seed})
		if err != nil {
			return nil, err
		}
		e.imdb, e.imdbSizes = db, sizes
	}
	e.imdb.Workers = e.Workers
	return e.imdb, nil
}

// DBLP returns (loading on first use) the bibliography database.
func (e *Env) DBLP() (*engine.DB, error) {
	if e.dblp == nil {
		db := engine.Open()
		sizes, err := datagen.LoadDBLP(db.Catalog(), datagen.Config{Scale: e.Scale, Seed: e.Seed})
		if err != nil {
			return nil, err
		}
		e.dblp, e.dblpSizes = db, sizes
	}
	e.dblp.Workers = e.Workers
	return e.dblp, nil
}

// DBFor returns the database a workload query runs against.
func (e *Env) DBFor(q Query) (*engine.DB, error) {
	if strings.HasPrefix(q.Name, "DBLP") {
		return e.DBLP()
	}
	return e.IMDB()
}

// Measurement is one timed query execution.
type Measurement struct {
	Mode     engine.Mode
	Duration time.Duration
	Stats    exec.Stats
	Rows     int
}

// Measure runs a query under one mode, returning the best-of-repeats
// wall-clock time (cold-cache effects do not exist in an in-memory engine;
// min-of-N suppresses scheduler noise). Canceling ctx aborts the run
// between and within repetitions.
func Measure(ctx context.Context, db *engine.DB, sql string, mode engine.Mode, repeats int) (Measurement, error) {
	if repeats < 1 {
		repeats = 1
	}
	best := Measurement{Mode: mode}
	for i := 0; i < repeats; i++ {
		start := time.Now()
		res, err := db.QueryContext(ctx, sql, engine.WithMode(mode))
		elapsed := time.Since(start)
		if err != nil {
			return Measurement{}, fmt.Errorf("%v: %w", mode, err)
		}
		if i == 0 || elapsed < best.Duration {
			best.Duration = elapsed
			best.Stats = res.Stats
			best.Rows = res.Rel.Len()
		}
	}
	return best, nil
}

// MeasurePrepared times repeated runs of a prepared statement under the
// given options (best-of-repeats, like Measure). Repetition matters for
// the score cache: from the second run on, a prepared statement serves
// scores from the engine's cross-query dictionary.
func MeasurePrepared(ctx context.Context, p *engine.Prepared, repeats int, opts ...engine.QueryOption) (Measurement, error) {
	if repeats < 1 {
		repeats = 1
	}
	var best Measurement
	for i := 0; i < repeats; i++ {
		start := time.Now()
		res, err := p.RunContext(ctx, opts...)
		elapsed := time.Since(start)
		if err != nil {
			return Measurement{}, err
		}
		if i == 0 || elapsed < best.Duration {
			best.Duration = elapsed
			best.Stats = res.Stats
			best.Rows = res.Rel.Len()
		}
	}
	return best, nil
}

// CompareModes measures a query under the given modes.
func CompareModes(ctx context.Context, db *engine.DB, sql string, modes []engine.Mode, repeats int) ([]Measurement, error) {
	out := make([]Measurement, 0, len(modes))
	for _, m := range modes {
		meas, err := Measure(ctx, db, sql, m, repeats)
		if err != nil {
			return nil, err
		}
		out = append(out, meas)
	}
	return out, nil
}

// ReportModes is the mode lineup reported in experiment tables: the paper's
// GBU and FtP against the two plug-in baselines, with the fully pipelined
// native execution as a reference point.
func ReportModes() []engine.Mode {
	return []engine.Mode{
		engine.ModeNative, engine.ModeGBU, engine.ModeFtP,
		engine.ModePluginNaive, engine.ModePluginMerged,
	}
}
