package bench

import (
	"context"
	"fmt"
	"io"

	"prefdb/internal/engine"
	"prefdb/internal/schema"
	"prefdb/internal/types"
)

// directJoinBaseRows sizes the probe relation of the E17 sweep at scale
// 1.0 (the 1M-row ceiling of the issue's acceptance sweep; |R| points run
// at /100, /10 and ×1 of this).
const directJoinBaseRows = 1_000_000

// directJoinGroups is the key cardinality of the probe side: the build
// table holds a subset of these keys, so join selectivity is the subset
// fraction.
const directJoinGroups = 1000

// directJoinSelectivities sweeps the fraction of probe rows with a build
// match: the low points are where materialize-at-probe wastes the most
// work (every probe row decoded, almost none joins), 0.5 is the
// convergence check.
var directJoinSelectivities = []float64{0.001, 0.01, 0.1, 0.5}

// directJoinDB builds the E17 pair: a segment-scale probe table whose int
// and string join keys are run-friendly (constant over stretches, so the
// store run-length-encodes them and the RLE hash kernels engage) and a
// small heap-side build table holding `int(sel*groups)` of the group keys.
func directJoinDB(rows int, sel float64) (*engine.DB, error) {
	db := engine.Open()
	tbl, err := db.Catalog().CreateTable("events", schema.New(
		schema.Column{Name: "id", Kind: types.KindInt},
		schema.Column{Name: "grp", Kind: types.KindInt},
		schema.Column{Name: "tier", Kind: types.KindString},
		schema.Column{Name: "year", Kind: types.KindInt},
	).WithKey("id"))
	if err != nil {
		return nil, err
	}
	// Keys are constant for runs of rows/groups consecutive rows; group g
	// occupies one contiguous stretch, so selecting the first k groups on
	// the build side selects a k/groups fraction of probe rows.
	runLen := rows / directJoinGroups
	if runLen < 1 {
		runLen = 1
	}
	for i := 0; i < rows; i++ {
		g := i / runLen % directJoinGroups
		year := 1970 + (i*37)%42
		err := tbl.Insert([]types.Value{
			types.Int(int64(i)), types.Int(int64(g)),
			types.Str(fmt.Sprintf("tier-%d", g)), types.Int(int64(year)),
		})
		if err != nil {
			return nil, err
		}
	}
	dims, err := db.Catalog().CreateTable("dims", schema.New(
		schema.Column{Name: "d_key", Kind: types.KindInt},
		schema.Column{Name: "d_tier", Kind: types.KindString},
		schema.Column{Name: "weight", Kind: types.KindInt},
	).WithKey("d_key"))
	if err != nil {
		return nil, err
	}
	keys := int(sel * directJoinGroups)
	if keys < 1 {
		keys = 1
	}
	for k := 0; k < keys; k++ {
		err := dims.Insert([]types.Value{
			types.Int(int64(k)), types.Str(fmt.Sprintf("tier-%d", k)), types.Int(int64(k % 7)),
		})
		if err != nil {
			return nil, err
		}
	}
	return db, nil
}

// --- E17: direct-column hash join (PR 9) ---

// runDirectJoin sweeps |R| × join selectivity × key family over the
// dims⋈events→prefer→top-k shape, comparing materialize-at-probe ("rows":
// the probe side packs row views at the scan, the join hashes tuples)
// against the direct-column join ("direct": probe batches stay columnar to
// the hash lookup — key hashes computed straight off int vectors,
// dictionary codes or RLE runs — and only rows with at least one build
// match become row views). Expected shape: the direct arm wins by a
// multiple at selectivity ≤0.01, where RowsMaterialized collapses from
// |probe| to the match count, and converges toward parity at 0.5. Both
// arms share the store, zone maps and the batch executor, so the delta
// isolates the join-boundary materialization change.
func runDirectJoin(ctx context.Context, e *Env, w io.Writer, repeats int) error {
	maxRows := int(directJoinBaseRows * e.Scale)
	if maxRows < 4000 {
		maxRows = 4000
	}
	header(w, "|R|", "sel", "key", "path", "time", "rows", "scanned", "materialized", "probeBatches", "speedup-vs-rows")
	for _, rows := range []int{maxRows / 100, maxRows / 10, maxRows} {
		if rows < 1000 {
			rows = 1000
		}
		for _, sel := range directJoinSelectivities {
			db, err := directJoinDB(rows, sel)
			if err != nil {
				return err
			}
			db.Workers = e.Workers
			// Warm the store: the sweep measures joins, not compaction.
			if t, tErr := db.Catalog().Table("events"); tErr == nil {
				t.WaitCompaction()
				t.ColStore()
			}
			for _, key := range []struct {
				label string
				on    string
			}{
				{"int", "dims.d_key = events.grp"},
				{"string", "dims.d_tier = events.tier"},
			} {
				sql := fmt.Sprintf(`SELECT id FROM dims JOIN events ON %s
					PREFERRING year >= 2000 SCORE recency(year, 2011) CONF 0.9 ON events
					USING sum TOP 10 BY score`, key.on)
				prep, err := db.Prepare(sql)
				if err != nil {
					return fmt.Errorf("rows=%d sel=%g %s: %w", rows, sel, key.label, err)
				}
				baseline := 0.0
				for _, arm := range []struct {
					label string
					mode  engine.ColstoreMode
				}{{"rows", engine.ColstoreRows}, {"direct", engine.ColstoreOn}} {
					m, err := MeasurePrepared(ctx, prep, repeats,
						engine.WithMode(engine.ModeNative), engine.WithScoreCache(engine.CacheOff),
						engine.WithBatch(engine.BatchOn), engine.WithColstore(arm.mode))
					if err != nil {
						return fmt.Errorf("rows=%d sel=%g %s %s: %w", rows, sel, key.label, arm.label, err)
					}
					ms := float64(m.Duration.Microseconds()) / 1000
					speedup := 0.0
					if arm.label == "rows" {
						baseline = ms
					} else if ms > 0 {
						speedup = baseline / ms
					}
					speedupCell := "–"
					if speedup > 0 {
						speedupCell = fmt.Sprintf("%.2fx", speedup)
					}
					fmt.Fprintf(w, "%d\t%.3f\t%s\t%s\t%.2fms\t%d\t%d\t%d\t%d\t%s\n",
						rows, sel, key.label, arm.label, ms, m.Rows, m.Stats.RowsScanned,
						m.Stats.RowsMaterialized, m.Stats.JoinProbeBatches, speedupCell)
					e.RecordPoint(Point{
						Experiment:       "directjoin",
						Label:            fmt.Sprintf("rows=%d sel=%.3f %s %s", rows, sel, key.label, arm.label),
						TableRows:        rows,
						Selectivity:      sel,
						Millis:           ms,
						ResultRows:       m.Rows,
						PreferEvals:      m.Stats.PreferEvals,
						ScoreEvals:       m.Stats.ScoreEvals,
						Batch:            "on",
						Batches:          m.Stats.Batches,
						Speedup:          speedup,
						Colstore:         arm.mode.String(),
						SegmentsScanned:  m.Stats.SegmentsScanned,
						SegmentsSkipped:  m.Stats.SegmentsSkipped,
						Predicate:        key.label,
						ColBatches:       m.Stats.ColBatches,
						RowsMaterialized: m.Stats.RowsMaterialized,
						JoinProbeBatches: m.Stats.JoinProbeBatches,
					})
				}
			}
		}
	}
	return nil
}
