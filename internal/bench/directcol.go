package bench

import (
	"context"
	"fmt"
	"io"

	"prefdb/internal/engine"
	"prefdb/internal/schema"
	"prefdb/internal/types"
)

// directBaseRows sizes the largest relation of the E16 sweep at scale
// 1.0 (the same 10M-row ceiling as the zone-map sweep, so the two
// experiments share an |R| axis).
const directBaseRows = 10_000_000

// directSelectivities is the WHERE sweep: the low points are where late
// materialization pays (few survivors → few row views built), the 0.5
// point is the convergence check.
var directSelectivities = []float64{0.001, 0.01, 0.1, 0.5}

// directDB builds the synthetic table for the direct-column sweep:
// sequential int key, a scored int year, and a low-cardinality string
// tier for the dictionary-predicate arm.
func directDB(rows int) (*engine.DB, error) {
	db := engine.Open()
	tbl, err := db.Catalog().CreateTable("events", schema.New(
		schema.Column{Name: "id", Kind: types.KindInt},
		schema.Column{Name: "year", Kind: types.KindInt},
		schema.Column{Name: "tier", Kind: types.KindString},
	).WithKey("id"))
	if err != nil {
		return nil, err
	}
	tiers := []string{"gold", "silver", "bronze", "basic"}
	for i := 0; i < rows; i++ {
		year := 1970 + (i*37)%42
		err := tbl.Insert([]types.Value{
			types.Int(int64(i)), types.Int(int64(year)), types.Str(tiers[i%len(tiers)]),
		})
		if err != nil {
			return nil, err
		}
	}
	return db, nil
}

// --- E16: direct-on-column kernel execution (PR 8) ---

// runDirectCol sweeps |R| × WHERE selectivity × predicate family over the
// scan→filter→prefer→top-k shape, comparing the row-packing colstore path
// ("rows", the PR 6 behavior) against the direct-on-column path ("direct"):
// typed column-vs-literal kernels shrink the selection vector without
// decoding values, string predicates evaluate once per segment dictionary
// and compare int codes per row, the ⟨S,C⟩ pair lives in plain float
// vectors, and row views are built only for rows that survive to the
// output (Stats.RowsMaterialized ≪ RowsScanned at low selectivity — the
// column it reports next to colBatches). Expected shape: the direct arm
// wins by a multiple at selectivity ≤0.01 where almost no row is ever
// materialized, and converges toward parity at 0.5 where the survivors
// dominate the work either way. Both arms share zone maps and the batch
// executor, so the delta isolates the kernel/materialization change.
func runDirectCol(ctx context.Context, e *Env, w io.Writer, repeats int) error {
	maxRows := int(directBaseRows * e.Scale)
	if maxRows < 4000 {
		maxRows = 4000
	}
	header(w, "|R|", "sel", "pred", "path", "time", "rows", "scanned", "materialized", "colBatches", "speedup-vs-rows")
	for _, rows := range []int{maxRows / 100, maxRows / 10, maxRows} {
		if rows < 1000 {
			rows = 1000
		}
		db, err := directDB(rows)
		if err != nil {
			return err
		}
		db.Workers = e.Workers
		// Warm the store: the sweep measures scans, not compaction.
		if t, tErr := db.Catalog().Table("events"); tErr == nil {
			t.WaitCompaction()
			t.ColStore()
		}
		for _, sel := range directSelectivities {
			cutoff := int(sel * float64(rows))
			for _, pred := range []struct {
				label string
				where string
			}{
				{"int", fmt.Sprintf("id <= %d", cutoff)},
				{"string", fmt.Sprintf("tier = 'gold' AND id <= %d", cutoff)},
			} {
				sql := fmt.Sprintf(`SELECT id FROM events
					WHERE %s
					PREFERRING year >= 2000 SCORE recency(year, 2011) CONF 0.9 ON events
					USING sum TOP 10 BY score`, pred.where)
				prep, err := db.Prepare(sql)
				if err != nil {
					return fmt.Errorf("rows=%d sel=%g %s: %w", rows, sel, pred.label, err)
				}
				baseline := 0.0
				for _, arm := range []struct {
					label string
					mode  engine.ColstoreMode
				}{{"rows", engine.ColstoreRows}, {"direct", engine.ColstoreOn}} {
					m, err := MeasurePrepared(ctx, prep, repeats,
						engine.WithMode(engine.ModeNative), engine.WithScoreCache(engine.CacheOff),
						engine.WithBatch(engine.BatchOn), engine.WithColstore(arm.mode))
					if err != nil {
						return fmt.Errorf("rows=%d sel=%g %s %s: %w", rows, sel, pred.label, arm.label, err)
					}
					ms := float64(m.Duration.Microseconds()) / 1000
					speedup := 0.0
					if arm.label == "rows" {
						baseline = ms
					} else if ms > 0 {
						speedup = baseline / ms
					}
					speedupCell := "–"
					if speedup > 0 {
						speedupCell = fmt.Sprintf("%.2fx", speedup)
					}
					fmt.Fprintf(w, "%d\t%.3f\t%s\t%s\t%.2fms\t%d\t%d\t%d\t%d\t%s\n",
						rows, sel, pred.label, arm.label, ms, m.Rows, m.Stats.RowsScanned,
						m.Stats.RowsMaterialized, m.Stats.ColBatches, speedupCell)
					e.RecordPoint(Point{
						Experiment:       "directcol",
						Label:            fmt.Sprintf("rows=%d sel=%.3f %s %s", rows, sel, pred.label, arm.label),
						TableRows:        rows,
						Selectivity:      sel,
						Millis:           ms,
						ResultRows:       m.Rows,
						PreferEvals:      m.Stats.PreferEvals,
						ScoreEvals:       m.Stats.ScoreEvals,
						Batch:            "on",
						Batches:          m.Stats.Batches,
						Speedup:          speedup,
						Colstore:         arm.mode.String(),
						SegmentsScanned:  m.Stats.SegmentsScanned,
						SegmentsSkipped:  m.Stats.SegmentsSkipped,
						Predicate:        pred.label,
						ColBatches:       m.Stats.ColBatches,
						RowsMaterialized: m.Stats.RowsMaterialized,
					})
				}
			}
		}
	}
	return nil
}
