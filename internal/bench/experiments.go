package bench

import (
	"context"
	"fmt"
	"io"
	"sort"
	"strings"

	"prefdb/internal/engine"
	"prefdb/internal/exec"
	"prefdb/internal/prel"
)

// Experiment regenerates one table or figure of the paper's evaluation.
type Experiment struct {
	// ID is the short key used by `benchrunner -exp <id>`.
	ID string
	// Title describes what is reproduced.
	Title string
	// Paper names the corresponding table/figure in the paper.
	Paper string
	// Run executes the experiment and writes its table to w; canceling
	// ctx aborts the experiment between (and within) measurements.
	Run func(ctx context.Context, e *Env, w io.Writer, repeats int) error
}

// Experiments returns the full suite in presentation order.
func Experiments() []Experiment {
	return []Experiment{
		{ID: "table1", Title: "Sizes of basic tables", Paper: "Table I", Run: runTable1},
		{ID: "table2", Title: "Workload query properties", Paper: "Table II", Run: runTable2},
		{ID: "optimization", Title: "Effect of query optimization", Paper: "Fig. 7 / Example 12", Run: runOptimization},
		{ID: "workload", Title: "Strategy comparison on the six workload queries", Paper: "§VII-B", Run: runWorkload},
		{ID: "prefs", Title: "Varying the number of preferences λ", Paper: "§VII (λ sweep)", Run: runVaryPreferences},
		{ID: "selectivity", Title: "Varying preference selectivity", Paper: "§VII (selectivity sweep)", Run: runVarySelectivity},
		{ID: "resultsize", Title: "Varying the result size N", Paper: "§VII (N sweep)", Run: runVaryResultSize},
		{ID: "relations", Title: "Varying the number of joined relations |R|", Paper: "§VII (|R| sweep)", Run: runVaryRelations},
		{ID: "scale", Title: "Scalability with database size", Paper: "§VII (scalability)", Run: runVaryScale},
		{ID: "filtering", Title: "Filtering strategies over one evaluated query", Paper: "§V (filtering flavors)", Run: runFiltering},
		{ID: "aggregates", Title: "Aggregate-function ablation", Paper: "§IV-A (F_S vs F_max)", Run: runAggregates},
		{ID: "optablation", Title: "Optimizer heuristic ablation", Paper: "§VI-A (heuristics 1-5)", Run: runOptimizerAblation},
		{ID: "scorecache", Title: "Preference score cache: mode × selectivity × key cardinality", Paper: "§IV/VI (scoring; E12)", Run: runScoreCache},
		{ID: "vectorization", Title: "Vectorized batch execution: style × block size × selectivity", Paper: "§V (execution; E13)", Run: runVectorization},
		{ID: "zonemap", Title: "Columnar zone-map pruning: store × selectivity × |R|", Paper: "§VII (data size; E14)", Run: runZoneMap},
		{ID: "serverload", Title: "Multi-session server throughput and tail latency vs session count", Paper: "§VII (serving; E15)", Run: runServerLoad},
		{ID: "directcol", Title: "Direct-on-column kernels: path × selectivity × |R| × predicate", Paper: "§V/§VII (late materialization; E16)", Run: runDirectCol},
		{ID: "directjoin", Title: "Direct-column hash join: path × join selectivity × |R| × key family", Paper: "§V/§VII (join execution; E17)", Run: runDirectJoin},
	}
}

// FindExperiment resolves an experiment by ID.
func FindExperiment(id string) (Experiment, error) {
	for _, ex := range Experiments() {
		if ex.ID == id {
			return ex, nil
		}
	}
	return Experiment{}, fmt.Errorf("bench: unknown experiment %q", id)
}

func header(w io.Writer, cols ...string) {
	for i, c := range cols {
		if i > 0 {
			fmt.Fprint(w, "\t")
		}
		fmt.Fprint(w, c)
	}
	fmt.Fprintln(w)
}

func modeRow(w io.Writer, label string, ms []Measurement) {
	fmt.Fprint(w, label)
	for _, m := range ms {
		fmt.Fprintf(w, "\t%.2fms/%d", float64(m.Duration.Microseconds())/1000, m.Stats.TuplesMaterialized)
	}
	fmt.Fprintln(w)
}

func modeHeader(w io.Writer, first string) {
	cols := []string{first}
	for _, m := range ReportModes() {
		cols = append(cols, m.String()+" (time/materialized)")
	}
	header(w, cols...)
}

// --- Table I ---

func runTable1(ctx context.Context, e *Env, w io.Writer, _ int) error {
	if _, err := e.IMDB(); err != nil {
		return err
	}
	if _, err := e.DBLP(); err != nil {
		return err
	}
	fmt.Fprintf(w, "Sizes of basic tables (scale %.2f; ratios follow the paper's Table I)\n", e.Scale)
	fmt.Fprint(w, e.imdbSizes.String())
	fmt.Fprint(w, e.dblpSizes.String())
	return nil
}

// --- Table II ---

func runTable2(ctx context.Context, e *Env, w io.Writer, _ int) error {
	header(w, "query", "N", "|R|", "λ", "P/NP")
	for _, q := range AllQueries() {
		db, err := e.DBFor(q)
		if err != nil {
			return err
		}
		res, err := db.QueryContext(ctx, q.SQL, engine.WithMode(engine.ModeGBU))
		if err != nil {
			return fmt.Errorf("%s: %w", q.Name, err)
		}
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%d/%d\n", q.Name, res.Rel.Len(), q.R, q.Lambda, q.P, q.NP)
	}
	return nil
}

// --- E1: effect of query optimization (Fig. 7) ---

func runOptimization(ctx context.Context, e *Env, w io.Writer, repeats int) error {
	header(w, "query", "plan", "mode", "time", "cells", "preferEvals")
	for _, q := range IMDBQueries() {
		db, err := e.DBFor(q)
		if err != nil {
			return err
		}
		for _, optimize := range []bool{false, true} {
			db.Optimize = optimize
			label := "baseline"
			if optimize {
				label = "optimized"
			}
			// The paper excludes BU from its evaluation ("GBU is an improved
			// method over BU"); we report GBU and FtP. Under BU, heuristic 2's
			// pruning projections each become an extra materialization step,
			// an honest trade-off recorded in EXPERIMENTS.md.
			for _, mode := range []engine.Mode{engine.ModeGBU, engine.ModeFtP} {
				m, err := Measure(ctx, db, q.SQL, mode, repeats)
				if err != nil {
					db.Optimize = true
					return fmt.Errorf("%s (%s): %w", q.Name, label, err)
				}
				fmt.Fprintf(w, "%s\t%s\t%v\t%.2fms\t%d\t%d\n",
					q.Name, label, mode, float64(m.Duration.Microseconds())/1000,
					m.Stats.CellsMaterialized, m.Stats.PreferEvals)
			}
		}
		db.Optimize = true
	}
	return nil
}

// --- E2: the six workload queries across strategies ---

func runWorkload(ctx context.Context, e *Env, w io.Writer, repeats int) error {
	modeHeader(w, "query")
	for _, q := range AllQueries() {
		db, err := e.DBFor(q)
		if err != nil {
			return err
		}
		ms, err := CompareModes(ctx, db, q.SQL, ReportModes(), repeats)
		if err != nil {
			return fmt.Errorf("%s: %w", q.Name, err)
		}
		modeRow(w, q.Name, ms)
	}
	return nil
}

// --- E3: varying the number of preferences λ ---

var sweepGenres = []string{
	"Comedy", "Drama", "Action", "Thriller", "Romance", "Horror", "Crime",
	"Adventure", "Sci-Fi", "Animation", "Mystery", "Fantasy", "Biography",
	"War", "Western", "Sport",
}

// QueryWithNPreferences builds an IMDB-1-style query with λ preferences on
// genres (distinct genre equality conditions).
func QueryWithNPreferences(lambda int) string {
	var prefs []string
	for i := 0; i < lambda; i++ {
		g := sweepGenres[i%len(sweepGenres)]
		conf := 0.5 + 0.4*float64(i%2)
		prefs = append(prefs, fmt.Sprintf("genre = '%s' SCORE %0.1f CONF %0.1f ON genres", g, 1.0-0.05*float64(i%8), conf))
	}
	return fmt.Sprintf(`SELECT title, year FROM movies
		JOIN genres ON movies.m_id = genres.m_id
		WHERE year >= 1990
		PREFERRING %s
		USING sum TOP 10 BY score`, strings.Join(prefs, ",\n\t\t"))
}

func runVaryPreferences(ctx context.Context, e *Env, w io.Writer, repeats int) error {
	db, err := e.IMDB()
	if err != nil {
		return err
	}
	modeHeader(w, "λ")
	for _, lambda := range []int{1, 2, 4, 8, 16} {
		sql := QueryWithNPreferences(lambda)
		ms, err := CompareModes(ctx, db, sql, ReportModes(), repeats)
		if err != nil {
			return fmt.Errorf("λ=%d: %w", lambda, err)
		}
		modeRow(w, fmt.Sprintf("%d", lambda), ms)
	}
	return nil
}

// --- E4: varying preference selectivity ---

func runVarySelectivity(ctx context.Context, e *Env, w io.Writer, repeats int) error {
	db, err := e.IMDB()
	if err != nil {
		return err
	}
	modeHeader(w, "pref-year≥")
	// year >= X over the skewed-recent year distribution: later cutoffs
	// make the preference's conditional part more selective.
	for _, cutoff := range []int{1940, 1980, 2000, 2008, 2011} {
		sql := fmt.Sprintf(`SELECT title, year FROM movies
			JOIN genres ON movies.m_id = genres.m_id
			PREFERRING year >= %d SCORE recency(year, 2011) CONF 0.9 ON movies
			USING sum TOP 10 BY score`, cutoff)
		ms, err := CompareModes(ctx, db, sql, ReportModes(), repeats)
		if err != nil {
			return fmt.Errorf("cutoff=%d: %w", cutoff, err)
		}
		modeRow(w, fmt.Sprintf("%d", cutoff), ms)
	}
	return nil
}

// --- E5: varying the result size N ---

func runVaryResultSize(ctx context.Context, e *Env, w io.Writer, repeats int) error {
	db, err := e.IMDB()
	if err != nil {
		return err
	}
	modeHeader(w, "N")
	for _, cutoff := range []int{2010, 2005, 1995, 1975, 1930} {
		sql := fmt.Sprintf(`SELECT title, year FROM movies
			JOIN genres ON movies.m_id = genres.m_id
			WHERE year >= %d
			PREFERRING genre = 'Comedy' SCORE 1 CONF 0.9 ON genres
			USING sum RANK BY score`, cutoff)
		// Report the actual result cardinality as the row label.
		res, err := db.QueryContext(ctx, sql, engine.WithMode(engine.ModeGBU))
		if err != nil {
			return err
		}
		ms, err := CompareModes(ctx, db, sql, ReportModes(), repeats)
		if err != nil {
			return fmt.Errorf("cutoff=%d: %w", cutoff, err)
		}
		modeRow(w, fmt.Sprintf("%d", res.Rel.Len()), ms)
	}
	return nil
}

// --- E6: varying the number of joined relations |R| ---

func runVaryRelations(ctx context.Context, e *Env, w io.Writer, repeats int) error {
	db, err := e.IMDB()
	if err != nil {
		return err
	}
	joins := []string{
		"JOIN genres ON movies.m_id = genres.m_id",
		"JOIN directors ON movies.d_id = directors.d_id",
		"JOIN ratings ON movies.m_id = ratings.m_id",
		"JOIN cast ON movies.m_id = cast.m_id",
	}
	modeHeader(w, "|R|")
	for n := 1; n <= len(joins); n++ {
		sql := fmt.Sprintf(`SELECT title, year FROM movies
			%s
			WHERE year >= 2000
			PREFERRING genre = 'Comedy' SCORE 1 CONF 0.9 ON genres,
			           year >= 2005 SCORE recency(year, 2011) CONF 0.8 ON movies
			USING sum TOP 10 BY score`, strings.Join(joins[:n], "\n\t\t\t"))
		ms, err := CompareModes(ctx, db, sql, ReportModes(), repeats)
		if err != nil {
			return fmt.Errorf("|R|=%d: %w", n+1, err)
		}
		modeRow(w, fmt.Sprintf("%d", n+1), ms)
	}
	return nil
}

// --- E7: scalability with database size ---

func runVaryScale(ctx context.Context, e *Env, w io.Writer, repeats int) error {
	modeHeader(w, "scale")
	q := IMDBQueries()[0]
	for _, factor := range []float64{0.25, 0.5, 1, 2} {
		sub := NewEnv(e.Scale * factor)
		sub.Seed = e.Seed
		db, err := sub.IMDB()
		if err != nil {
			return err
		}
		ms, err := CompareModes(ctx, db, q.SQL, ReportModes(), repeats)
		if err != nil {
			return fmt.Errorf("scale %v: %w", factor, err)
		}
		modeRow(w, fmt.Sprintf("%.2gx", factor), ms)
	}
	return nil
}

// --- E8: filtering strategies over the same evaluated query ---

func runFiltering(ctx context.Context, e *Env, w io.Writer, repeats int) error {
	db, err := e.IMDB()
	if err != nil {
		return err
	}
	base := `SELECT title, year FROM movies
		JOIN genres ON movies.m_id = genres.m_id
		WHERE year >= 1990
		PREFERRING genre = 'Comedy' SCORE 1 CONF 0.9 ON genres,
		           year >= 2000 SCORE recency(year, 2011) CONF 0.8 ON movies
		USING sum `
	header(w, "filter", "rows", "time")
	for _, f := range []struct{ label, clause string }{
		{"top-10 by score", "TOP 10 BY score"},
		{"top-10 by conf", "TOP 10 BY conf"},
		{"threshold conf>=1.5", "THRESHOLD conf >= 1.5"},
		{"threshold score>=0.8", "THRESHOLD score >= 0.8"},
		{"skyline (score,conf)", "SKYLINE"},
		{"skyline of year/duration", "SKYLINE OF year MAX, duration MIN"},
		{"rank-all", "RANK BY score"},
	} {
		m, err := Measure(ctx, db, base+f.clause, engine.ModeGBU, repeats)
		if err != nil {
			return fmt.Errorf("%s: %w", f.label, err)
		}
		fmt.Fprintf(w, "%s\t%d\t%.2fms\n", f.label, m.Rows, float64(m.Duration.Microseconds())/1000)
	}
	return nil
}

// --- E9: aggregate-function ablation ---

func runAggregates(ctx context.Context, e *Env, w io.Writer, repeats int) error {
	db, err := e.IMDB()
	if err != nil {
		return err
	}
	template := `SELECT title, director FROM movies
		JOIN directors ON movies.d_id = directors.d_id
		JOIN genres ON movies.m_id = genres.m_id
		JOIN ratings ON movies.m_id = ratings.m_id
		WHERE year >= 1980
		PREFERRING genre = 'Drama' SCORE 0.9 CONF 0.8 ON genres,
		           votes > 500 SCORE linear(rating, 0.1) CONF 0.8 ON ratings,
		           duration <= 120 SCORE around(duration, 120) CONF 0.5 ON movies
		USING %s TOP 10 BY score`
	refRes, err := db.QueryContext(ctx, fmt.Sprintf(template, "sum"), engine.WithMode(engine.ModeGBU))
	if err != nil {
		return err
	}
	refSet := topSet(refRes.Rel)
	header(w, "aggregate", "time", "overlap@10 vs sum")
	for _, agg := range []string{"sum", "max", "maxscore", "mult"} {
		sql := fmt.Sprintf(template, agg)
		m, err := Measure(ctx, db, sql, engine.ModeGBU, repeats)
		if err != nil {
			return fmt.Errorf("%s: %w", agg, err)
		}
		res, err := db.QueryContext(ctx, sql, engine.WithMode(engine.ModeGBU))
		if err != nil {
			return err
		}
		overlap := 0
		for key := range topSet(res.Rel) {
			if refSet[key] {
				overlap++
			}
		}
		fmt.Fprintf(w, "%s\t%.2fms\t%d/%d\n", agg, float64(m.Duration.Microseconds())/1000, overlap, len(refSet))
	}
	return nil
}

func topSet(rel *prel.PRelation) map[string]bool {
	out := map[string]bool{}
	for _, row := range rel.Rows {
		out[prel.Fingerprint(row.Tuple)] = true
	}
	return out
}

// SummarizeStats renders a stats table sorted by mode name (helper for the
// CLI).
func SummarizeStats(ms []Measurement) string {
	sorted := append([]Measurement(nil), ms...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Mode < sorted[j].Mode })
	var b strings.Builder
	for _, m := range sorted {
		fmt.Fprintf(&b, "%-14s %8.2fms  rows=%-6d %v\n",
			m.Mode, float64(m.Duration.Microseconds())/1000, m.Rows, m.Stats)
	}
	return b.String()
}

var _ = exec.Stats{} // keep the exec import for Measurement's field type

// --- E10: optimizer heuristic ablation ---

func runOptimizerAblation(ctx context.Context, e *Env, w io.Writer, repeats int) error {
	db, err := e.IMDB()
	if err != nil {
		return err
	}
	q, err := FindQuery("IMDB-2")
	if err != nil {
		return err
	}
	opt := db.Optimizer()
	reset := func() {
		opt.DisableSelectPushdown = false
		opt.DisableProjectionPushdown = false
		opt.DisablePreferPushdown = false
		opt.DisablePreferReorder = false
		opt.DisableJoinReorder = false
	}
	defer reset()
	// Warm up statistics and caches so the first configuration is not
	// penalized.
	if _, err := Measure(ctx, db, q.SQL, engine.ModeGBU, 1); err != nil {
		return err
	}
	header(w, "configuration", "gbu time", "materialized", "bu time", "materialized")
	configs := []struct {
		label string
		set   func()
	}{
		{"all heuristics", reset},
		{"no select pushdown (h1)", func() { reset(); opt.DisableSelectPushdown = true }},
		{"no projection pushdown (h2)", func() { reset(); opt.DisableProjectionPushdown = true }},
		{"no prefer pushdown (h3/h4)", func() { reset(); opt.DisablePreferPushdown = true }},
		{"no prefer reorder (h5)", func() { reset(); opt.DisablePreferReorder = true }},
		{"no join reorder", func() { reset(); opt.DisableJoinReorder = true }},
		{"optimizer off", nil},
	}
	for _, c := range configs {
		if c.set != nil {
			c.set()
			db.Optimize = true
		} else {
			reset()
			db.Optimize = false
		}
		g, err := Measure(ctx, db, q.SQL, engine.ModeGBU, repeats)
		if err != nil {
			db.Optimize = true
			return fmt.Errorf("%s: %w", c.label, err)
		}
		b, err := Measure(ctx, db, q.SQL, engine.ModeBU, repeats)
		if err != nil {
			db.Optimize = true
			return fmt.Errorf("%s: %w", c.label, err)
		}
		fmt.Fprintf(w, "%s\t%.2fms\t%d\t%.2fms\t%d\n",
			c.label, float64(g.Duration.Microseconds())/1000, g.Stats.TuplesMaterialized,
			float64(b.Duration.Microseconds())/1000, b.Stats.TuplesMaterialized)
	}
	db.Optimize = true
	return nil
}
