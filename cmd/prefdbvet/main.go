// Command prefdbvet runs prefdb's custom static-analysis suite over the
// repository: eight analyzers enforcing the concurrency and executor
// invariants that the compiler cannot see (atomic counter access,
// lifecycle ticks in pull loops, flow-sensitive lock discipline,
// lock-order deadlock cycles, goroutine join points, selection-vector
// aliasing, hashed Value equality, %w-wrapped typed errors). See
// DESIGN.md §11 for the invariant catalog and §16 for the lock
// hierarchy.
//
// Usage:
//
//	go run ./cmd/prefdbvet ./...
//	go run ./cmd/prefdbvet -run lockset,lockorder ./internal/wire
//	go run ./cmd/prefdbvet -json ./... > findings.json
//	go run ./cmd/prefdbvet -run lockorder -lockgraph - ./...
//
// The exit status is 1 when any diagnostic is reported, so the command
// gates CI exactly like go vet. -list and -lockgraph are informational
// and exit 0; -json only changes the output encoding, not the status.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"prefdb/internal/lint"
)

// finding is the -json wire form of one diagnostic.
type finding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func main() {
	runFilter := flag.String("run", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list the available analyzers and exit")
	listOld := flag.Bool("analyzers", false, "alias for -list")
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array on stdout instead of plain text")
	lockgraph := flag.String("lockgraph", "", "write the derived lock hierarchy to this file (\"-\" for stdout); requires the lockorder analyzer in the selection")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: prefdbvet [-run names] [-json] [-lockgraph file] [packages]\n\n")
		flag.PrintDefaults()
		fmt.Fprintf(flag.CommandLine.Output(), "\nanalyzers:\n")
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-14s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()

	analyzers := lint.Analyzers()
	if *list || *listOld {
		for _, a := range analyzers {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *runFilter != "" {
		byName := map[string]*lint.Analyzer{}
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		analyzers = analyzers[:0]
		for _, name := range strings.Split(*runFilter, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "prefdbvet: unknown analyzer %q\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}
	if *lockgraph != "" {
		haveOrder := false
		for _, a := range analyzers {
			haveOrder = haveOrder || a.Name == "lockorder"
		}
		if !haveOrder {
			fmt.Fprintf(os.Stderr, "prefdbvet: -lockgraph needs the lockorder analyzer in the -run selection\n")
			os.Exit(2)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "prefdbvet: %v\n", err)
		os.Exit(2)
	}
	pkgs, err := lint.NewLoader(wd).LoadPatterns(patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "prefdbvet: %v\n", err)
		os.Exit(2)
	}
	diags := lint.Run(pkgs, analyzers)

	if *lockgraph != "" {
		hier := lint.LockHierarchy()
		if *lockgraph == "-" {
			fmt.Print(hier)
		} else if err := os.WriteFile(*lockgraph, []byte(hier), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "prefdbvet: %v\n", err)
			os.Exit(2)
		}
	}

	if *jsonOut {
		findings := make([]finding, 0, len(diags))
		for _, d := range diags {
			findings = append(findings, finding{
				File:     d.Pos.Filename,
				Line:     d.Pos.Line,
				Column:   d.Pos.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintf(os.Stderr, "prefdbvet: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}
