// Command prefdbvet runs prefdb's custom static-analysis suite over the
// repository: five analyzers enforcing the executor invariants that the
// compiler cannot see (atomic counter access, lifecycle ticks in pull
// loops, selection-vector aliasing, hashed Value equality, %w-wrapped
// typed errors). See DESIGN.md §11 for the invariant catalog.
//
// Usage:
//
//	go run ./cmd/prefdbvet ./...
//	go run ./cmd/prefdbvet -run atomicfield,wrapcheck ./internal/exec
//
// The exit status is 1 when any diagnostic is reported, so the command
// gates CI exactly like go vet.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"prefdb/internal/lint"
)

func main() {
	runFilter := flag.String("run", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("analyzers", false, "list the available analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: prefdbvet [-run names] [packages]\n\n")
		flag.PrintDefaults()
		fmt.Fprintf(flag.CommandLine.Output(), "\nanalyzers:\n")
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-14s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()

	analyzers := lint.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *runFilter != "" {
		byName := map[string]*lint.Analyzer{}
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		analyzers = analyzers[:0]
		for _, name := range strings.Split(*runFilter, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "prefdbvet: unknown analyzer %q\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "prefdbvet: %v\n", err)
		os.Exit(2)
	}
	pkgs, err := lint.NewLoader(wd).LoadPatterns(patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "prefdbvet: %v\n", err)
		os.Exit(2)
	}
	diags := lint.Run(pkgs, analyzers)
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}
