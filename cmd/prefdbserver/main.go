// Command prefdbserver serves a prefdb database over TCP to any number of
// concurrent sessions.
//
// Usage:
//
//	prefdbserver -addr :7483 [-open snapshot] [-load imdb -scale 0.5]
//	             [-token secret] [-max-concurrent 16] [-session-concurrent 4]
//	             [-memory-budget 1073741824] [-query-memory 67108864]
//	             [-slow-query 500ms] [-stmt-cache 128]
//
// Connect with prefdb -connect host:port, or programmatically with
// prefdb.Dial. SIGINT/SIGTERM drain connections and exit.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"prefdb"
	"prefdb/internal/server"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:7483", "TCP listen address")
		token     = flag.String("token", "", "require this auth token from clients")
		open      = flag.String("open", "", "restore a database snapshot at startup")
		load      = flag.String("load", "", "preload a synthetic dataset: imdb or dblp")
		scale     = flag.Float64("scale", 0.1, "dataset scale factor")
		seed      = flag.Int64("seed", 42, "dataset generator seed")
		mode      = flag.String("mode", "gbu", "server default evaluation strategy")
		workers   = flag.Int("workers", 0, "server default executor workers (0 = GOMAXPROCS)")
		maxConc   = flag.Int("max-concurrent", 0, "server-wide concurrent statements (0 = 2×GOMAXPROCS)")
		sessConc  = flag.Int("session-concurrent", 4, "per-session concurrent statements")
		memBudget = flag.Int64("memory-budget", 0, "cross-session materialization memory pool in bytes (0 = unaccounted)")
		queryMem  = flag.Int64("query-memory", 64<<20, "default per-statement memory reservation in bytes")
		slow      = flag.Duration("slow-query", 0, "log statements slower than this (0 = off)")
		stmtCache = flag.Int("stmt-cache", 128, "shared prepared-statement cache entries")
	)
	flag.Parse()

	db := prefdb.Open()
	if *open != "" {
		f, err := os.Open(*open)
		if err != nil {
			fatal(err)
		}
		db, err = prefdb.Load(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("restored snapshot %s\n", *open)
	}
	m, err := prefdb.ParseMode(*mode)
	if err != nil {
		fatal(err)
	}
	db.Mode = m
	db.Workers = *workers

	switch strings.ToLower(*load) {
	case "":
	case "imdb":
		sizes, err := prefdb.LoadIMDB(db, prefdb.DatagenConfig{Scale: *scale, Seed: *seed})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("loaded synthetic IMDB at scale %g: %d movies\n", *scale, sizes["movies"])
	case "dblp":
		sizes, err := prefdb.LoadDBLP(db, prefdb.DatagenConfig{Scale: *scale, Seed: *seed})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("loaded synthetic DBLP at scale %g: %d publications\n", *scale, sizes["publications"])
	default:
		fatal(fmt.Errorf("unknown dataset %q (imdb, dblp)", *load))
	}

	srv := server.New(db, server.Options{
		Addr:              *addr,
		Token:             *token,
		MaxConcurrent:     *maxConc,
		SessionConcurrent: *sessConc,
		MemoryBudget:      *memBudget,
		QueryMemory:       *queryMem,
		SlowQuery:         *slow,
		StmtCacheSize:     *stmtCache,
		LogWriter:         os.Stderr,
	})
	if err := srv.Listen(); err != nil {
		fatal(err)
	}
	fmt.Printf("prefdbserver listening on %s (mode %s)\n", srv.Addr(), db.Mode)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	// prefdb:fire-and-forget signal watcher lives for the whole process; Serve returning is the join
	go func() {
		s := <-sigc
		fmt.Fprintf(os.Stderr, "prefdbserver: %v: draining connections...\n", s)
		srv.Close()
	}()

	if err := srv.Serve(); err != nil {
		fatal(err)
	}
	// Serve returned because Close ran; Close joins every connection
	// before returning, so a second call just waits for the drain.
	srv.Close()
	fmt.Println("prefdbserver: shut down")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "prefdbserver:", err)
	os.Exit(1)
}
