// Command datagen generates the synthetic IMDB / DBLP datasets used by the
// experiments, prints their Table-I-style sizes, and optionally exports
// every table as CSV.
//
// Usage:
//
//	datagen -dataset imdb -scale 0.5 -seed 42 [-out dir]
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"prefdb/internal/catalog"
	"prefdb/internal/datagen"
	"prefdb/internal/storage"
	"prefdb/internal/types"
)

func main() {
	var (
		dataset = flag.String("dataset", "both", "dataset to generate: imdb, dblp or both")
		scale   = flag.Float64("scale", 1.0, "scale factor (1.0 ≈ 20k movies / 20k papers)")
		seed    = flag.Int64("seed", 42, "generator seed")
		out     = flag.String("out", "", "directory for CSV export (omit to skip)")
	)
	flag.Parse()

	cfg := datagen.Config{Scale: *scale, Seed: *seed}
	run := func(name string, load func(*catalog.Catalog, datagen.Config) (datagen.Sizes, error)) {
		cat := catalog.New()
		sizes, err := load(cat, cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s (scale %g, seed %d)\n%s", strings.ToUpper(name), *scale, *seed, sizes.String())
		if *out != "" {
			dir := filepath.Join(*out, name)
			if err := exportCSV(cat, dir); err != nil {
				fatal(err)
			}
			fmt.Printf("exported to %s\n", dir)
		}
	}

	switch strings.ToLower(*dataset) {
	case "imdb":
		run("imdb", datagen.LoadIMDB)
	case "dblp":
		run("dblp", datagen.LoadDBLP)
	case "both":
		run("imdb", datagen.LoadIMDB)
		run("dblp", datagen.LoadDBLP)
	default:
		fatal(fmt.Errorf("unknown dataset %q", *dataset))
	}
}

func exportCSV(cat *catalog.Catalog, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, name := range cat.Tables() {
		t, err := cat.Table(name)
		if err != nil {
			return err
		}
		if err := exportTable(t, filepath.Join(dir, name+".csv")); err != nil {
			return err
		}
	}
	return nil
}

func exportTable(t *catalog.Table, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	headerRow := make([]string, t.Schema().Len())
	for i, c := range t.Schema().Columns {
		headerRow[i] = c.Name
	}
	if err := w.Write(headerRow); err != nil {
		return err
	}
	var writeErr error
	t.Heap.Scan(func(_ storage.RowID, tuple []types.Value) bool {
		row := make([]string, len(tuple))
		for i, v := range tuple {
			row[i] = v.String()
		}
		if err := w.Write(row); err != nil {
			writeErr = err
			return false
		}
		return true
	})
	if writeErr != nil {
		return writeErr
	}
	w.Flush()
	return w.Error()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "datagen:", err)
	os.Exit(1)
}
