// Command prefdb is an interactive shell / one-shot runner for the
// preference-aware database engine.
//
// Usage:
//
//	prefdb [-load imdb|dblp] [-scale 0.1] [-mode gbu] [-cache auto] [-batch on] [-timeout 5s] [-explain] [-q "SELECT ..."] [-cpuprofile cpu.pprof] [-memprofile mem.pprof]
//	prefdb -connect host:port [-token t] [-mode gbu] [-q "SELECT ..."]
//
// Without -q it reads statements from stdin, terminated by ';'.
// SIGINT/SIGTERM cancel the active statement (printing its partial
// execution stats) instead of killing the process mid-materialization;
// exit the shell with Ctrl-D or \quit.
//
// With -connect, statements run on a prefdbserver instead of an embedded
// database: the mode/cache/batch/colstore/workers flags become the remote
// session's defaults and everything else — results, options, cancel
// behavior — works identically (the shell talks to the same Session
// interface either way). Dataset and snapshot flags (-load, -open, -save)
// are embedded-only.
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"
	"text/tabwriter"
	"time"

	"prefdb"
)

// runConfig carries the per-statement execution settings.
type runConfig struct {
	explain  bool
	maxRows  int
	timeout  time.Duration
	rowLimit int
	sigc     chan os.Signal
}

func main() {
	var (
		load     = flag.String("load", "", "preload a synthetic dataset: imdb or dblp")
		scale    = flag.Float64("scale", 0.1, "dataset scale factor (1.0 ≈ 20k movies)")
		seed     = flag.Int64("seed", 42, "dataset generator seed")
		mode     = flag.String("mode", "gbu", "evaluation strategy: native, bu, gbu, ftp, plugin-naive, plugin-merged")
		cache    = flag.String("cache", "auto", "preference score cache: auto (follow optimizer hints), off, on")
		batch    = flag.String("batch", "on", "vectorized batch execution: on, off")
		colstore = flag.String("colstore", "off", "columnar segment scans with zone-map pruning: on (direct column kernels), rows, off")
		workers  = flag.Int("workers", 0, "parallel executor workers (0 = GOMAXPROCS, 1 = sequential)")
		timeout  = flag.Duration("timeout", 0, "per-statement wall-clock deadline (0 = none)")
		rowLimit = flag.Int("max-rows", 0, "per-statement materialized-row budget (0 = unlimited)")
		explain  = flag.Bool("explain", false, "print the optimized plan and execution stats")
		query    = flag.String("q", "", "execute one statement and exit")
		maxRows  = flag.Int("rows", 25, "maximum rows to display")
		open     = flag.String("open", "", "restore a database snapshot before running")
		save     = flag.String("save", "", "write a database snapshot on exit")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile to this file on exit")
		connect  = flag.String("connect", "", "run statements on a prefdbserver at host:port instead of embedded")
		token    = flag.String("token", "", "auth token for -connect")
	)
	flag.Parse()

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintln(os.Stderr, "prefdb:", err)
				return
			}
			runtime.GC() // settle allocations so the heap profile reflects live state
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "prefdb:", err)
			}
			f.Close()
		}()
	}

	// SIGINT/SIGTERM cancel the active statement's context; the shell
	// survives and prints the partial stats (see runStatement).
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	cfg := runConfig{explain: *explain, maxRows: *maxRows, timeout: *timeout, rowLimit: *rowLimit, sigc: sigc}

	if *connect != "" {
		if *load != "" || *open != "" || *save != "" {
			fatal(errors.New("-load/-open/-save are embedded-only; the server owns its data"))
		}
		defaults, err := sessionDefaults(*mode, *cache, *batch, *colstore, *workers)
		if err != nil {
			fatal(err)
		}
		sess, err := prefdb.Dial(*connect, prefdb.WithToken(*token), prefdb.WithSessionDefaults(defaults...))
		if err != nil {
			fatal(err)
		}
		defer sess.Close()
		if *query != "" {
			if err := runStatement(sess, *query, cfg); err != nil {
				fatal(err)
			}
			return
		}
		fmt.Printf("prefdb shell — connected to %s; terminate statements with ';', Ctrl-D to exit\n", *connect)
		shell(nil, sess, cfg)
		return
	}

	db := prefdb.Open()
	if *open != "" {
		f, err := os.Open(*open)
		if err != nil {
			fatal(err)
		}
		db, err = prefdb.Load(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("restored snapshot %s\n", *open)
	}
	defer func() {
		if *save == "" {
			return
		}
		f, err := os.Create(*save)
		if err != nil {
			fatal(err)
		}
		if err := db.Save(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("saved snapshot %s\n", *save)
	}()
	m, err := prefdb.ParseMode(*mode)
	if err != nil {
		fatal(err)
	}
	db.Mode = m
	db.Workers = *workers
	cm, err := prefdb.ParseCacheMode(*cache)
	if err != nil {
		fatal(err)
	}
	db.ScoreCache = cm
	bm, err := prefdb.ParseBatchMode(*batch)
	if err != nil {
		fatal(err)
	}
	db.Batch = bm
	csm, err := prefdb.ParseColstoreMode(*colstore)
	if err != nil {
		fatal(err)
	}
	db.Colstore = csm

	switch strings.ToLower(*load) {
	case "":
	case "imdb":
		sizes, err := prefdb.LoadIMDB(db, prefdb.DatagenConfig{Scale: *scale, Seed: *seed})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("loaded synthetic IMDB at scale %g: %d movies\n", *scale, sizes["movies"])
	case "dblp":
		sizes, err := prefdb.LoadDBLP(db, prefdb.DatagenConfig{Scale: *scale, Seed: *seed})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("loaded synthetic DBLP at scale %g: %d publications\n", *scale, sizes["publications"])
	default:
		fatal(fmt.Errorf("unknown dataset %q (imdb, dblp)", *load))
	}

	sess := prefdb.NewSession(db)
	defer sess.Close()
	if *query != "" {
		if err := runStatement(sess, *query, cfg); err != nil {
			fatal(err)
		}
		return
	}

	fmt.Println("prefdb shell — terminate statements with ';', \\help for meta-commands, Ctrl-D to exit")
	shell(db, sess, cfg)
}

// sessionDefaults turns the strategy flags into session default options
// for a remote connection.
func sessionDefaults(mode, cache, batch, colstore string, workers int) ([]prefdb.QueryOption, error) {
	m, err := prefdb.ParseMode(mode)
	if err != nil {
		return nil, err
	}
	cm, err := prefdb.ParseCacheMode(cache)
	if err != nil {
		return nil, err
	}
	bm, err := prefdb.ParseBatchMode(batch)
	if err != nil {
		return nil, err
	}
	csm, err := prefdb.ParseColstoreMode(colstore)
	if err != nil {
		return nil, err
	}
	opts := []prefdb.QueryOption{
		prefdb.WithMode(m), prefdb.WithScoreCache(cm),
		prefdb.WithBatch(bm), prefdb.WithColstore(csm),
	}
	if workers != 0 {
		opts = append(opts, prefdb.WithWorkers(workers))
	}
	return opts, nil
}

// shell reads statements from stdin until EOF; db is nil when connected
// to a server (meta-commands needing catalog access are embedded-only).
func shell(db *prefdb.DB, sess prefdb.Session, cfg runConfig) {
	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	prompt(buf.Len() > 0)
	for scanner.Scan() {
		line := scanner.Text()
		if buf.Len() == 0 && strings.HasPrefix(strings.TrimSpace(line), "\\") {
			if quit := metaCommand(db, strings.TrimSpace(line)); quit {
				return
			}
			prompt(false)
			continue
		}
		buf.WriteString(line)
		buf.WriteByte('\n')
		if strings.Contains(line, ";") {
			stmt := strings.TrimSpace(buf.String())
			buf.Reset()
			if stmt != ";" && stmt != "" {
				if err := runStatement(sess, stmt, cfg); err != nil {
					fmt.Fprintln(os.Stderr, "error:", err)
				}
			}
		}
		prompt(buf.Len() > 0)
	}
}

// metaCommand handles backslash commands; it reports whether to quit.
// db is nil in connected mode, where catalog-backed commands are
// unavailable.
func metaCommand(db *prefdb.DB, cmd string) bool {
	fields := strings.Fields(cmd)
	switch fields[0] {
	case "\\q", "\\quit", "\\exit":
		return true
	}
	if db == nil {
		fmt.Fprintf(os.Stderr, "meta-command %s is embedded-only (connected to a server)\n", fields[0])
		return false
	}
	switch fields[0] {
	case "\\help", "\\h":
		fmt.Println(`meta-commands:
  \tables            list tables with row counts
  \schema <table>    show a table's columns, key and indexes
  \mode [name]       show or set the evaluation strategy
  \quit              exit`)
	case "\\tables":
		cat := db.Catalog()
		for _, name := range cat.Tables() {
			t, err := cat.Table(name)
			if err != nil {
				continue
			}
			fmt.Printf("  %-16s %d rows\n", name, t.Len())
		}
	case "\\schema":
		if len(fields) < 2 {
			fmt.Fprintln(os.Stderr, "usage: \\schema <table>")
			break
		}
		t, err := db.Catalog().Table(fields[1])
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			break
		}
		s := t.Schema()
		for i, c := range s.Columns {
			keyMark := ""
			for _, k := range s.Key {
				if k == i {
					keyMark = "  PRIMARY KEY"
				}
			}
			fmt.Printf("  %-16s %s%s\n", c.Name, c.Kind, keyMark)
		}
		if cols := t.HashIndexColumns(); len(cols) > 0 {
			fmt.Printf("  hash indexes: %s\n", strings.Join(cols, ", "))
		}
		if cols := t.BTreeIndexColumns(); len(cols) > 0 {
			fmt.Printf("  btree indexes: %s\n", strings.Join(cols, ", "))
		}
	case "\\mode":
		if len(fields) < 2 {
			fmt.Println("mode:", db.Mode)
			break
		}
		m, err := prefdb.ParseMode(fields[1])
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			break
		}
		db.Mode = m
		fmt.Println("mode:", db.Mode)
	default:
		fmt.Fprintf(os.Stderr, "unknown meta-command %s (try \\help)\n", fields[0])
	}
	return false
}

func prompt(continuation bool) {
	if continuation {
		fmt.Print("   ...> ")
	} else {
		fmt.Print("prefdb> ")
	}
}

func runStatement(sess prefdb.Session, sql string, cfg runConfig) error {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// Discard signals delivered between statements so a stale Ctrl-C does
	// not kill the next query the moment it starts.
	select {
	case <-cfg.sigc:
	default:
	}
	done := make(chan struct{})
	defer close(done)
	go func() {
		select {
		case s := <-cfg.sigc:
			fmt.Fprintf(os.Stderr, "\ninterrupt (%v): canceling statement...\n", s)
			cancel()
		case <-done:
		}
	}()

	opts := []prefdb.QueryOption{}
	if cfg.timeout > 0 {
		opts = append(opts, prefdb.WithTimeout(cfg.timeout))
	}
	if cfg.rowLimit > 0 {
		opts = append(opts, prefdb.WithMaxRows(cfg.rowLimit))
	}
	res, err := sess.ExecContext(ctx, sql, opts...)
	if err != nil {
		var ge *prefdb.GuardError
		if errors.As(err, &ge) {
			fmt.Fprintf(os.Stderr, "statement aborted: %v\n", ge)
			fmt.Fprintf(os.Stderr, "partial stats: %v\n", ge.Stats)
			return nil
		}
		return err
	}
	if res.Message != "" {
		fmt.Println(res.Message)
		return nil
	}
	printRelation(res, cfg.maxRows)
	if cfg.explain {
		fmt.Println("-- plan:")
		fmt.Print(indent(res.Plan, "--   "))
		fmt.Printf("-- stats: %v\n", res.Stats)
	}
	return nil
}

func printRelation(res *prefdb.Result, maxRows int) {
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, strings.Join(res.Columns(), "\t"))
	for i, row := range res.Rel.Rows {
		if i == maxRows {
			break
		}
		cells := make([]string, 0, len(row.Tuple)+2)
		for _, v := range row.Tuple {
			cells = append(cells, v.String())
		}
		if row.SC.Known {
			cells = append(cells, fmt.Sprintf("%.3f", row.SC.Score), fmt.Sprintf("%.3f", row.SC.Conf))
		} else {
			cells = append(cells, "⊥", "0")
		}
		fmt.Fprintln(w, strings.Join(cells, "\t"))
	}
	w.Flush()
	if res.Rel.Len() > maxRows {
		fmt.Printf("... (%d rows total)\n", res.Rel.Len())
	} else {
		fmt.Printf("(%d rows)\n", res.Rel.Len())
	}
}

func indent(s, prefix string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i := range lines {
		lines[i] = prefix + lines[i]
	}
	return strings.Join(lines, "\n") + "\n"
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "prefdb:", err)
	os.Exit(1)
}
