// Command benchrunner regenerates the paper's evaluation tables and
// figures (see EXPERIMENTS.md for the mapping).
//
// Usage:
//
//	benchrunner -exp all -scale 0.25 -repeats 3
//	benchrunner -exp prefs
//	benchrunner -list
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"prefdb/internal/bench"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment id or 'all'")
		scale   = flag.Float64("scale", 0.25, "dataset scale factor (1.0 ≈ 20k movies)")
		repeats = flag.Int("repeats", 3, "repetitions per measurement (best-of)")
		workers = flag.Int("workers", 0, "parallel executor workers (0 = GOMAXPROCS, 1 = sequential)")
		list    = flag.Bool("list", false, "list experiments and exit")
	)
	flag.Parse()

	if *list {
		w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(w, "id\tpaper\ttitle")
		for _, ex := range bench.Experiments() {
			fmt.Fprintf(w, "%s\t%s\t%s\n", ex.ID, ex.Paper, ex.Title)
		}
		w.Flush()
		return
	}

	env := bench.NewEnv(*scale)
	env.Workers = *workers
	var toRun []bench.Experiment
	if *exp == "all" {
		toRun = bench.Experiments()
	} else {
		ex, err := bench.FindExperiment(*exp)
		if err != nil {
			fatal(err)
		}
		toRun = []bench.Experiment{ex}
	}

	for _, ex := range toRun {
		fmt.Printf("=== %s — %s (%s) ===\n", ex.ID, ex.Title, ex.Paper)
		w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		if err := ex.Run(env, w, *repeats); err != nil {
			fatal(fmt.Errorf("%s: %w", ex.ID, err))
		}
		w.Flush()
		fmt.Println()
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchrunner:", err)
	os.Exit(1)
}
