// Command benchrunner regenerates the paper's evaluation tables and
// figures (see EXPERIMENTS.md for the mapping).
//
// Usage:
//
//	benchrunner -exp all -scale 0.25 -repeats 3
//	benchrunner -exp prefs
//	benchrunner -exp scorecache -json BENCH_PR3.json
//	benchrunner -exp vectorization -json BENCH_PR4.json -cpuprofile cpu.pprof
//	benchrunner -exp zonemap -scale 0.1 -json BENCH_PR6.json
//	benchrunner -list
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"syscall"
	"text/tabwriter"

	"prefdb/internal/bench"
	"prefdb/internal/exec"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment id or 'all'")
		scale   = flag.Float64("scale", 0.25, "dataset scale factor (1.0 ≈ 20k movies)")
		repeats = flag.Int("repeats", 3, "repetitions per measurement (best-of)")
		workers = flag.Int("workers", 0, "parallel executor workers (0 = GOMAXPROCS, 1 = sequential)")
		timeout = flag.Duration("timeout", 0, "overall wall-clock budget for the run (0 = none)")
		list    = flag.Bool("list", false, "list experiments and exit")
		jsonOut = flag.String("json", "", "write the run's recorded measurements as JSON to this file")
		cpuProf = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProf = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintln(os.Stderr, "benchrunner:", err)
				return
			}
			runtime.GC() // settle allocations so the heap profile reflects live state
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "benchrunner:", err)
			}
			f.Close()
		}()
	}

	// SIGINT/SIGTERM cancel the run's context: the active query drains
	// its workers and the runner exits cleanly instead of dying
	// mid-materialization.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	if *list {
		w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(w, "id\tpaper\ttitle")
		for _, ex := range bench.Experiments() {
			fmt.Fprintf(w, "%s\t%s\t%s\n", ex.ID, ex.Paper, ex.Title)
		}
		w.Flush()
		return
	}

	env := bench.NewEnv(*scale)
	env.Workers = *workers
	var toRun []bench.Experiment
	if *exp == "all" {
		toRun = bench.Experiments()
	} else {
		ex, err := bench.FindExperiment(*exp)
		if err != nil {
			fatal(err)
		}
		toRun = []bench.Experiment{ex}
	}

	for _, ex := range toRun {
		fmt.Printf("=== %s — %s (%s) ===\n", ex.ID, ex.Title, ex.Paper)
		w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		err := ex.Run(ctx, env, w, *repeats)
		w.Flush()
		if err != nil {
			var ge *exec.GuardError
			if errors.As(err, &ge) {
				fmt.Fprintf(os.Stderr, "benchrunner: %s aborted: %v\n", ex.ID, ge)
				fmt.Fprintf(os.Stderr, "benchrunner: partial stats of the interrupted query: %v\n", ge.Stats)
				os.Exit(130)
			}
			fatal(fmt.Errorf("%s: %w", ex.ID, err))
		}
		fmt.Println()
	}

	if *jsonOut != "" {
		data, err := json.MarshalIndent(env.Points, "", "  ")
		if err != nil {
			fatal(err)
		}
		data = append(data, '\n')
		if err := os.WriteFile(*jsonOut, data, 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %d measurement(s) to %s\n", len(env.Points), *jsonOut)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchrunner:", err)
	os.Exit(1)
}
