module prefdb

go 1.22
