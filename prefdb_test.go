package prefdb

import (
	"bytes"
	"testing"
)

func TestPublicAPIRoundTrip(t *testing.T) {
	db := Open()
	stmts := []string{
		`CREATE TABLE movies (m_id INT, title TEXT, year INT, PRIMARY KEY (m_id))`,
		`INSERT INTO movies VALUES (1, 'Gran Torino', 2008), (2, 'Wall Street', 1987), (3, 'Scoop', 2006)`,
	}
	for _, s := range stmts {
		if _, err := db.Exec(s); err != nil {
			t.Fatal(err)
		}
	}
	res, err := db.Exec(`SELECT title FROM movies
		PREFERRING year >= 2000 SCORE recency(year, 2011) CONF 0.9 ON movies
		TOP 2 BY score`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rel.Len() != 2 {
		t.Fatalf("rows = %d", res.Rel.Len())
	}
	if got := res.Rel.Rows[0].Tuple[0].AsString(); got != "Gran Torino" {
		t.Errorf("top = %q", got)
	}
	if !res.Rel.Rows[0].SC.Known {
		t.Error("top row should carry a score")
	}
}

func TestPublicAPIModes(t *testing.T) {
	db := Open()
	if _, err := LoadIMDB(db, DatagenConfig{Scale: 0.01, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	q := `SELECT title FROM movies
	      JOIN genres ON movies.m_id = genres.m_id
	      PREFERRING genre = 'Drama' SCORE 1 CONF 0.8 ON genres
	      TOP 5 BY score`
	ref, err := db.Query(q, ModeNative)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range Modes() {
		res, err := db.Query(q, m)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if res.Rel.Len() != ref.Rel.Len() {
			t.Errorf("%v: %d rows, want %d", m, res.Rel.Len(), ref.Rel.Len())
		}
	}
	if m, err := ParseMode("ftp"); err != nil || m != ModeFtP {
		t.Error("ParseMode failed")
	}
}

func TestPublicValues(t *testing.T) {
	if Int(3).AsInt() != 3 || Float(1.5).AsFloat() != 1.5 || Str("x").AsString() != "x" || !Bool(true).AsBool() || !Null().IsNull() {
		t.Error("value constructors broken")
	}
}

func TestLoadDBLPPublic(t *testing.T) {
	db := Open()
	sizes, err := LoadDBLP(db, DatagenConfig{Scale: 0.01, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if sizes["publications"] == 0 {
		t.Errorf("sizes = %v", sizes)
	}
	res, err := db.Exec(`SELECT title FROM publications
		JOIN conferences ON publications.p_id = conferences.p_id
		PREFERRING name = 'ICDE' SCORE 1 CONF 0.9 ON conferences
		TOP 3 BY score`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rel.Len() == 0 {
		t.Error("empty result")
	}
}

func TestRootProfileAndPreferenceAPI(t *testing.T) {
	db := Open()
	if _, err := db.Exec(`CREATE TABLE movies (m_id INT, title TEXT, year INT, PRIMARY KEY (m_id))`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`INSERT INTO movies VALUES (1, 'A', 2008), (2, 'B', 1990)`); err != nil {
		t.Fatal(err)
	}
	p, err := ParsePreference("year >= 2000 SCORE recency(year, 2011) CONF 0.9 ON movies AS recent")
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "recent" || len(p.On) != 1 {
		t.Errorf("parsed preference = %+v", p)
	}
	if _, err := ParsePreference("not a preference"); err == nil {
		t.Error("bad clause should error")
	}
	if _, err := ParsePreference("x > 1 SCORE 1 CONF 7 ON r"); err == nil {
		t.Error("invalid confidence should error")
	}
	store := NewProfileStore()
	if err := store.Add("u", p); err != nil {
		t.Fatal(err)
	}
	res, err := db.QueryForUser("SELECT title FROM movies RANK BY score", store, "u", ModeGBU)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Rel.Rows[0].SC.Known || res.Rel.Rows[0].Tuple[0].AsString() != "A" {
		t.Errorf("profile query top = %v", res.Rel.Rows[0])
	}
}

func TestRootSnapshotAndPrepared(t *testing.T) {
	db := Open()
	if _, err := LoadIMDB(db, DatagenConfig{Scale: 0.01, Seed: 2}); err != nil {
		t.Fatal(err)
	}
	q := `SELECT title FROM movies
	      PREFERRING year >= 2000 SCORE recency(year, 2011) CONF 0.9 ON movies
	      TOP 3 BY score`
	p, err := db.Prepare(q)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := p.Run(ModeGBU)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Save(db, &buf); err != nil {
		t.Fatal(err)
	}
	restored, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	res, err := restored.Query(q, ModeGBU)
	if err != nil {
		t.Fatal(err)
	}
	if diff := ref.Rel.Diff(res.Rel, 1e-9); diff != "" {
		t.Errorf("restored db differs: %s", diff)
	}
}

func TestRootCompoundQuery(t *testing.T) {
	db := Open()
	for _, s := range []string{
		`CREATE TABLE t (id INT, PRIMARY KEY (id))`,
		`INSERT INTO t VALUES (1), (2), (3)`,
	} {
		if _, err := db.Exec(s); err != nil {
			t.Fatal(err)
		}
	}
	res, err := db.Exec(`SELECT id FROM t WHERE id <= 2 UNION SELECT id FROM t WHERE id >= 2`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rel.Len() != 3 {
		t.Errorf("union rows = %d", res.Rel.Len())
	}
	upd, err := db.Exec(`UPDATE t SET id = id + 10 WHERE id = 3`)
	if err != nil || upd.Message == "" {
		t.Fatalf("update: %v", err)
	}
	del, err := db.Exec(`DELETE FROM t WHERE id = 13`)
	if err != nil || del.Message == "" {
		t.Fatalf("delete: %v", err)
	}
}

func TestRootQualitativeOrder(t *testing.T) {
	db := Open()
	for _, s := range []string{
		`CREATE TABLE genres (m_id INT, genre TEXT, PRIMARY KEY (m_id, genre))`,
		`INSERT INTO genres VALUES (1, 'Comedy'), (2, 'Drama'), (3, 'Horror')`,
	} {
		if _, err := db.Exec(s); err != nil {
			t.Fatal(err)
		}
	}
	ps, err := NewQualitativeOrder("genres", "genre").
		Chain(Str("Comedy"), Str("Drama"), Str("Horror")).
		Compile(0.9)
	if err != nil {
		t.Fatal(err)
	}
	store := NewProfileStore()
	if err := store.Add("alice", ps...); err != nil {
		t.Fatal(err)
	}
	res, err := db.QueryForUser("SELECT m_id, genre FROM genres RANK BY score", store, "alice", ModeGBU)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rel.Rows[0].Tuple[1].AsString() != "Comedy" {
		t.Errorf("top genre = %v", res.Rel.Rows[0].Tuple)
	}
	if res.Rel.Rows[2].Tuple[1].AsString() != "Horror" {
		t.Errorf("bottom genre = %v", res.Rel.Rows[2].Tuple)
	}
}
