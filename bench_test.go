package prefdb

import (
	"fmt"
	"sync"
	"testing"

	"prefdb/internal/bench"
	"prefdb/internal/engine"
)

// Benchmarks regenerating the paper's evaluation. Each benchmark
// corresponds to an experiment in EXPERIMENTS.md; `cmd/benchrunner` prints
// the same measurements as paper-style tables. The shared environment uses
// scale 0.1 (≈2k movies / 2k papers) so `go test -bench=.` completes in
// minutes; use benchrunner -scale to go bigger.

const benchScale = 0.1

var (
	envOnce  sync.Once
	benchEnv *bench.Env
)

func sharedEnv(b *testing.B) *bench.Env {
	envOnce.Do(func() { benchEnv = bench.NewEnv(benchScale) })
	return benchEnv
}

func benchQuery(b *testing.B, db *engine.DB, sql string, mode engine.Mode) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := db.Query(sql, mode)
		if err != nil {
			b.Fatal(err)
		}
		_ = res
	}
}

// BenchmarkWorkload reproduces E2 (§VII-B): the six Table II queries under
// every reported strategy.
func BenchmarkWorkload(b *testing.B) {
	e := sharedEnv(b)
	for _, q := range bench.AllQueries() {
		db, err := e.DBFor(q)
		if err != nil {
			b.Fatal(err)
		}
		for _, mode := range bench.ReportModes() {
			b.Run(q.Name+"/"+mode.String(), func(b *testing.B) {
				benchQuery(b, db, q.SQL, mode)
			})
		}
	}
}

// BenchmarkOptimizationEffect reproduces E1 (Fig. 7 / Example 12): the
// same query with and without the preference-aware optimizer.
func BenchmarkOptimizationEffect(b *testing.B) {
	e := sharedEnv(b)
	db, err := e.IMDB()
	if err != nil {
		b.Fatal(err)
	}
	q := bench.IMDBQueries()[1] // IMDB-2: 4 relations, 3 preferences
	for _, optimized := range []bool{false, true} {
		label := "baseline"
		if optimized {
			label = "optimized"
		}
		b.Run(label, func(b *testing.B) {
			db.Optimize = optimized
			defer func() { db.Optimize = true }()
			benchQuery(b, db, q.SQL, engine.ModeGBU)
		})
	}
}

// BenchmarkVaryPreferences reproduces E3: query cost as the number of
// preferences λ grows, per strategy.
func BenchmarkVaryPreferences(b *testing.B) {
	e := sharedEnv(b)
	db, err := e.IMDB()
	if err != nil {
		b.Fatal(err)
	}
	for _, lambda := range []int{1, 4, 16} {
		sql := bench.QueryWithNPreferences(lambda)
		for _, mode := range []engine.Mode{engine.ModeGBU, engine.ModeFtP, engine.ModePluginNaive, engine.ModePluginMerged} {
			b.Run(fmt.Sprintf("lambda=%d/%s", lambda, mode), func(b *testing.B) {
				benchQuery(b, db, sql, mode)
			})
		}
	}
}

// BenchmarkVarySelectivity reproduces E4: preference conditional-part
// selectivity sweep.
func BenchmarkVarySelectivity(b *testing.B) {
	e := sharedEnv(b)
	db, err := e.IMDB()
	if err != nil {
		b.Fatal(err)
	}
	for _, cutoff := range []int{1940, 2000, 2011} {
		sql := fmt.Sprintf(`SELECT title, year FROM movies
			JOIN genres ON movies.m_id = genres.m_id
			PREFERRING year >= %d SCORE recency(year, 2011) CONF 0.9 ON movies
			USING sum TOP 10 BY score`, cutoff)
		b.Run(fmt.Sprintf("year>=%d", cutoff), func(b *testing.B) {
			benchQuery(b, db, sql, engine.ModeGBU)
		})
	}
}

// BenchmarkVaryResultSize reproduces E5: WHERE selectivity sweep (result
// size N).
func BenchmarkVaryResultSize(b *testing.B) {
	e := sharedEnv(b)
	db, err := e.IMDB()
	if err != nil {
		b.Fatal(err)
	}
	for _, cutoff := range []int{2010, 1995, 1930} {
		sql := fmt.Sprintf(`SELECT title, year FROM movies
			JOIN genres ON movies.m_id = genres.m_id
			WHERE year >= %d
			PREFERRING genre = 'Comedy' SCORE 1 CONF 0.9 ON genres
			USING sum RANK BY score`, cutoff)
		b.Run(fmt.Sprintf("year>=%d", cutoff), func(b *testing.B) {
			benchQuery(b, db, sql, engine.ModeGBU)
		})
	}
}

// BenchmarkVaryRelations reproduces E6: number of joined relations |R|.
func BenchmarkVaryRelations(b *testing.B) {
	e := sharedEnv(b)
	db, err := e.IMDB()
	if err != nil {
		b.Fatal(err)
	}
	joins := []string{
		"JOIN genres ON movies.m_id = genres.m_id",
		"JOIN directors ON movies.d_id = directors.d_id",
		"JOIN ratings ON movies.m_id = ratings.m_id",
		"JOIN cast ON movies.m_id = cast.m_id",
	}
	for n := 1; n <= len(joins); n++ {
		sql := "SELECT title, year FROM movies\n"
		for _, j := range joins[:n] {
			sql += j + "\n"
		}
		sql += `WHERE year >= 2000
			PREFERRING genre = 'Comedy' SCORE 1 CONF 0.9 ON genres
			USING sum TOP 10 BY score`
		b.Run(fmt.Sprintf("R=%d", n+1), func(b *testing.B) {
			benchQuery(b, db, sql, engine.ModeGBU)
		})
	}
}

// BenchmarkVaryScale reproduces E7: scalability with database size.
func BenchmarkVaryScale(b *testing.B) {
	q := bench.IMDBQueries()[0]
	for _, scale := range []float64{0.05, 0.1, 0.2} {
		env := bench.NewEnv(scale)
		db, err := env.IMDB()
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("scale=%g", scale), func(b *testing.B) {
			benchQuery(b, db, q.SQL, engine.ModeGBU)
		})
	}
}

// BenchmarkFiltering reproduces E8: filtering flavors over one evaluated
// query (§V).
func BenchmarkFiltering(b *testing.B) {
	e := sharedEnv(b)
	db, err := e.IMDB()
	if err != nil {
		b.Fatal(err)
	}
	base := `SELECT title, year FROM movies
		JOIN genres ON movies.m_id = genres.m_id
		WHERE year >= 1990
		PREFERRING genre = 'Comedy' SCORE 1 CONF 0.9 ON genres,
		           year >= 2000 SCORE recency(year, 2011) CONF 0.8 ON movies
		USING sum `
	for _, f := range []struct{ name, clause string }{
		{"topk", "TOP 10 BY score"},
		{"threshold", "THRESHOLD conf >= 1.5"},
		{"skyline", "SKYLINE"},
		{"attr-skyline", "SKYLINE OF year MAX, duration MIN"},
		{"rank", "RANK BY score"},
	} {
		b.Run(f.name, func(b *testing.B) {
			benchQuery(b, db, base+f.clause, engine.ModeGBU)
		})
	}
}

// BenchmarkAggregates reproduces E9: the aggregate-function ablation.
func BenchmarkAggregates(b *testing.B) {
	e := sharedEnv(b)
	db, err := e.IMDB()
	if err != nil {
		b.Fatal(err)
	}
	for _, agg := range []string{"sum", "max", "maxscore", "mult"} {
		sql := fmt.Sprintf(`SELECT title FROM movies
			JOIN genres ON movies.m_id = genres.m_id
			PREFERRING genre = 'Drama' SCORE 0.9 CONF 0.8 ON genres,
			           year >= 2000 SCORE recency(year, 2011) CONF 0.6 ON movies
			USING %s TOP 10 BY score`, agg)
		b.Run(agg, func(b *testing.B) {
			benchQuery(b, db, sql, engine.ModeGBU)
		})
	}
}

// BenchmarkTable2Queries times query compilation (parse + plan + optimize)
// separately from execution.
func BenchmarkPlanning(b *testing.B) {
	e := sharedEnv(b)
	db, err := e.IMDB()
	if err != nil {
		b.Fatal(err)
	}
	q := bench.IMDBQueries()[1]
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := db.QueryPlan(q.SQL); err != nil {
			b.Fatal(err)
		}
	}
}
