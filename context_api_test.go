package prefdb

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestFacadeQueryLifecycle exercises the context-aware entry points and
// the re-exported options and sentinel errors through the public facade.
func TestFacadeQueryLifecycle(t *testing.T) {
	db := Open(WithDefaultMode(ModeGBU))
	if _, err := LoadIMDB(db, DatagenConfig{Scale: 0.05, Seed: 3}); err != nil {
		t.Fatal(err)
	}
	sql := `SELECT title, year FROM movies
		JOIN genres ON movies.m_id = genres.m_id
		PREFERRING genre = 'Drama' SCORE 1 CONF 0.9 ON genres
		USING sum TOP 5 BY score`

	res, err := db.QueryContext(context.Background(), sql, WithMode(ModeFtP), WithWorkers(2))
	if err != nil || res.Rel.Len() == 0 {
		t.Fatalf("QueryContext: %v", err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := db.QueryContext(ctx, sql); !errors.Is(err, ErrCanceled) {
		t.Fatalf("canceled: err = %v, want prefdb.ErrCanceled", err)
	}
	if _, err := db.QueryContext(context.Background(), sql, WithTimeout(time.Nanosecond)); !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("timeout: err = %v, want prefdb.ErrDeadlineExceeded", err)
	}
	_, err = db.QueryContext(context.Background(), sql, WithMaxRows(50))
	if !errors.Is(err, ErrResourceExhausted) {
		t.Fatalf("row budget: err = %v, want prefdb.ErrResourceExhausted", err)
	}
	var ge *GuardError
	if !errors.As(err, &ge) || ge.Budget != 50 {
		t.Fatalf("row budget: GuardError = %+v", ge)
	}
}
