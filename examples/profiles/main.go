// Profiles shows the §V application model end-to-end: a preference
// repository collects each user's preferences (in the PREFERRING clause
// syntax), plain SQL queries are automatically enriched with the
// applicable ones, and the whole database round-trips through a snapshot.
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"

	"prefdb"
)

func main() {
	db := prefdb.Open()
	if _, err := prefdb.LoadIMDB(db, prefdb.DatagenConfig{Scale: 0.05, Seed: 11}); err != nil {
		log.Fatal(err)
	}
	// The session's default strategy applies to every query below; the
	// per-query WithProfile option binds each statement to one user's
	// stored preferences.
	sess := prefdb.NewSession(db, prefdb.WithMode(prefdb.ModeGBU))
	defer sess.Close()

	// The application collects preferences per user over time. Alice's are
	// explicit (confidence 1); the system also learnt two weaker ones from
	// her viewing history.
	profiles := prefdb.NewProfileStore()
	for _, clause := range []string{
		"genre = 'Comedy' SCORE 1 CONF 1 ON genres AS lovesComedies",
		"year >= 2005 SCORE recency(year, 2011) CONF 0.6 ON movies AS leansRecent",
		"votes > 1000 SCORE linear(rating, 0.1) CONF 0.7 ON ratings AS trustsCrowd",
	} {
		if err := profiles.AddClause("alice", clause); err != nil {
			log.Fatal(err)
		}
	}
	if err := profiles.AddClause("bob", "genre = 'Horror' SCORE 1 CONF 0.9 ON genres AS horrorFan"); err != nil {
		log.Fatal(err)
	}

	// The user types plain SQL; the engine integrates whatever stored
	// preferences are applicable to the relations in the query.
	q := `SELECT title, year FROM movies
	      JOIN genres ON movies.m_id = genres.m_id
	      WHERE year >= 1995
	      TOP 5 BY score`

	for _, user := range []string{"alice", "bob"} {
		res, err := sess.QueryContext(context.Background(), q, prefdb.WithProfile(profiles, user))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("Top movies for %s:\n", user)
		for _, row := range res.Rel.Rows {
			fmt.Printf("  %-14s %v  score=%.3f conf=%.2f\n",
				row.Tuple[0], row.Tuple[1], row.SC.Score, row.SC.Conf)
		}
		fmt.Println()
	}

	// Note the ratings preference was skipped for this query (RATINGS is
	// not joined); add the join and it participates.
	q2 := `SELECT title, rating FROM movies
	       JOIN genres ON movies.m_id = genres.m_id
	       JOIN ratings ON movies.m_id = ratings.m_id
	       TOP 3 BY score`
	res, err := sess.QueryContext(context.Background(), q2, prefdb.WithProfile(profiles, "alice"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("With RATINGS joined, alice's crowd preference kicks in:")
	for _, row := range res.Rel.Rows {
		fmt.Printf("  %-14s rating=%v  score=%.3f conf=%.2f\n",
			row.Tuple[0], row.Tuple[1], row.SC.Score, row.SC.Conf)
	}

	// Snapshot the database and query the restored copy.
	var buf bytes.Buffer
	if err := prefdb.Save(db, &buf); err != nil {
		log.Fatal(err)
	}
	size := buf.Len()
	restored, err := prefdb.Load(&buf)
	if err != nil {
		log.Fatal(err)
	}
	rsess := prefdb.NewSession(restored, prefdb.WithMode(prefdb.ModeGBU))
	defer rsess.Close()
	res2, err := rsess.QueryContext(context.Background(), q, prefdb.WithProfile(profiles, "alice"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nSnapshot round-trip: %d bytes, restored top result %q\n",
		size, res2.Rel.Rows[0].Tuple[0])
}
