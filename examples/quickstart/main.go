// Quickstart: create a table, add preferences to a query, and inspect the
// resulting scores and confidences.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"prefdb"
)

func main() {
	db := prefdb.Open()

	// A session carries default options for every statement it runs; the
	// resolution chain is Open defaults < session defaults < per-query
	// options.
	sess := prefdb.NewSession(db)
	defer sess.Close()

	must(sess, `CREATE TABLE movies (
		m_id INT, title TEXT, year INT, duration INT,
		PRIMARY KEY (m_id)
	)`)
	must(sess, `INSERT INTO movies VALUES
		(1, 'Gran Torino', 2008, 116),
		(2, 'Wall Street', 1987, 126),
		(3, 'Million Dollar Baby', 2004, 132),
		(4, 'Match Point', 2005, 124),
		(5, 'Scoop', 2006, 96)`)

	// A preferential query: preferences are soft — they score tuples, they
	// never filter them. Filtering (TOP k) happens afterwards, on scores.
	res, err := sess.ExecContext(context.Background(), `
		SELECT title, year FROM movies
		PREFERRING year >= 2000 SCORE recency(year, 2011) CONF 1.0 ON movies,
		           duration <= 120 SCORE around(duration, 120) CONF 0.5 ON movies
		USING sum
		RANK BY score`)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("All movies ranked by preference score:")
	fmt.Println(res.Rel)

	// The same query with a top-k filter: per-query options make it
	// cancelable and bounded by a wall-clock deadline and a
	// materialization budget (both generous here).
	top, err := sess.QueryContext(context.Background(), `
		SELECT title FROM movies
		PREFERRING year >= 2000 SCORE recency(year, 2011) CONF 1.0 ON movies,
		           duration <= 120 SCORE around(duration, 120) CONF 0.5 ON movies
		TOP 2 BY score`,
		prefdb.WithTimeout(5*time.Second), prefdb.WithMaxRows(100_000))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Top 2:")
	for _, row := range top.Rel.Rows {
		fmt.Printf("  %-22s score=%.3f conf=%.2f\n", row.Tuple[0], row.SC.Score, row.SC.Conf)
	}

	// Large results need not materialize: StreamContext hands back a Rows
	// iterator fed row by row from the executor pipeline.
	rows, err := sess.StreamContext(context.Background(), `
		SELECT title, year FROM movies
		PREFERRING year >= 2000 SCORE recency(year, 2011) CONF 1.0 ON movies
		RANK BY score`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Streamed:")
	for rows.Next() {
		row := rows.Row()
		fmt.Printf("  %-22s score=%.3f\n", row.Tuple[0], row.SC.Score)
	}
	if err := rows.Err(); err != nil {
		log.Fatal(err)
	}
	rows.Close()
}

func must(sess prefdb.Session, sql string) {
	if _, err := sess.ExecContext(context.Background(), sql); err != nil {
		log.Fatalf("%s: %v", sql, err)
	}
}
