// Dblpsearch runs preference-aware scholarly search over the synthetic
// DBLP dataset (schema of the paper's Fig. 8): venue preferences, recency
// scoring, a membership preference for cited papers, and a skyline over
// the (score, confidence) plane.
package main

import (
	"context"
	"fmt"
	"log"

	"prefdb"
)

func main() {
	db := prefdb.Open()
	sizes, err := prefdb.LoadDBLP(db, prefdb.DatagenConfig{Scale: 0.1, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("synthetic DBLP: %d publications, %d authors, %d authorship rows\n\n",
		sizes["publications"], sizes["authors"], sizes["pub_authors"])
	sess := prefdb.NewSession(db)
	defer sess.Close()

	// Preferred venues and recent work, ranked.
	venueQuery := `
	SELECT title, name, year FROM publications
	JOIN conferences ON publications.p_id = conferences.p_id
	PREFERRING name IN ('ICDE', 'SIGMOD', 'VLDB') SCORE 1 CONF 0.9 ON conferences AS dbVenues,
	           year >= 2000 SCORE recency(year, 2011) CONF 0.7 ON conferences AS recent
	USING sum
	TOP 5 BY score`
	show(sess, "Top database-venue papers", venueQuery)

	// Membership preference: papers that are cited at all are preferred —
	// the DBLP analogue of the paper's p7 (award-winning movies), expressed
	// as (σ_true, 1, 0.8) over the join with CITATIONS.
	citedQuery := `
	SELECT title FROM publications
	JOIN citations ON publications.p_id = citations.p2_id
	PREFERRING true SCORE 1 CONF 0.8 ON (publications, citations)
	TOP 5 BY score`
	show(sess, "Cited papers (membership preference)", citedQuery)

	// Skyline on (score, confidence): papers for which no other paper is
	// both better-scored and more confidently scored. Venue preference is
	// confident; the recency preference is weaker but scores newer papers
	// higher — the skyline exposes the trade-off.
	skylineQuery := `
	SELECT title, name, year FROM publications
	JOIN conferences ON publications.p_id = conferences.p_id
	PREFERRING name = 'ICDE' SCORE 1 CONF 0.9 ON conferences,
	           year >= 2005 SCORE recency(year, 2011) CONF 0.4 ON conferences
	USING max
	SKYLINE`
	res, err := sess.ExecContext(context.Background(), skylineQuery)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Skyline over (score, conf): %d undominated papers\n", res.Rel.Len())
	for i, row := range res.Rel.Rows {
		if i == 8 {
			fmt.Printf("  ... (%d more)\n", res.Rel.Len()-8)
			break
		}
		fmt.Printf("  %-14s %-10s %v  score=%.3f conf=%.2f\n",
			row.Tuple[0], row.Tuple[1], row.Tuple[2], row.SC.Score, row.SC.Conf)
	}
}

func show(sess prefdb.Session, title, sql string) {
	res, err := sess.ExecContext(context.Background(), sql)
	if err != nil {
		log.Fatalf("%s: %v", title, err)
	}
	fmt.Println(title + ":")
	seen := map[string]bool{}
	for _, row := range res.Rel.Rows {
		if key := row.Tuple[0].String(); seen[key] {
			continue // joins (e.g. with CITATIONS) may duplicate titles
		} else {
			seen[key] = true
		}
		fmt.Printf("  %v", row.Tuple[0])
		for _, v := range row.Tuple[1:] {
			fmt.Printf("  %v", v)
		}
		fmt.Printf("  score=%.3f conf=%.2f\n", row.SC.Score, row.SC.Conf)
	}
	fmt.Println()
}
