// Movierental reproduces the paper's §V application scenario: an online
// video rental service with the database of Fig. 1 and the preferences of
// Fig. 5 for two users, Alice and Bob. It runs the paper's three example
// queries:
//
//	Q1 — selecting the top-k results (Example 9),
//	Q2 — selecting the most confident results (Example 10),
//	Q3 — blending Alice's preferences with Bob's (Example 11).
package main

import (
	"context"
	"fmt"
	"log"

	"prefdb"
)

func main() {
	db := prefdb.Open()
	sess := prefdb.NewSession(db)
	defer sess.Close()
	loadFig1(sess)

	// --- Q1 (Example 9): top-k recent movies for Alice ---------------------
	// p1: Alice loves comedies; p2: her favourite director is C. Eastwood;
	// p3: she is a fan of the lead of movie 4 (atomic actor preference).
	q1 := `
	SELECT title, director FROM movies
	JOIN directors ON movies.d_id = directors.d_id
	JOIN genres ON movies.m_id = genres.m_id
	JOIN cast ON movies.m_id = cast.m_id
	JOIN actors ON cast.a_id = actors.a_id
	WHERE year >= 2004
	PREFERRING genre = 'Comedy' SCORE 0.8 CONF 0.9 ON genres AS aliceComedies,
	           director = 'C. Eastwood' SCORE 0.9 CONF 0.8 ON directors AS aliceEastwood,
	           actor = 'S. Johansson' SCORE 1 CONF 1 ON actors AS aliceScarlett
	USING sum
	TOP 3 BY score`
	show(sess, "Q1 — top-3 recent movies for Alice", q1)

	// --- Q2 (Example 10): only confident suggestions -----------------------
	// The application designer sets a confidence threshold τ so that movies
	// relevant to too few of Alice's preferences are disqualified.
	q2 := `
	SELECT title, director FROM movies
	JOIN directors ON movies.d_id = directors.d_id
	JOIN genres ON movies.m_id = genres.m_id
	JOIN cast ON movies.m_id = cast.m_id
	JOIN actors ON cast.a_id = actors.a_id
	WHERE year >= 2004
	PREFERRING genre = 'Comedy' SCORE 0.8 CONF 0.9 ON genres,
	           director = 'C. Eastwood' SCORE 0.9 CONF 0.8 ON directors,
	           actor = 'S. Johansson' SCORE 1 CONF 1 ON actors
	USING sum
	THRESHOLD conf >= 1.5`
	show(sess, "Q2 — suggestions matching several preferences (conf ≥ 1.5)", q2)

	// --- Q3 (Example 11): blending Alice's and Bob's preferences -----------
	// Bob prefers the most recent Woody Allen movies (p4, multi-relational)
	// and recently liked Gran Torino (p5, atomic). Alice's director
	// preference is mandatory-ish (high confidence); Bob's enrich the list.
	q3 := `
	SELECT title, director FROM movies
	JOIN directors ON movies.d_id = directors.d_id
	PREFERRING director = 'C. Eastwood' SCORE 0.9 CONF 0.8 ON directors AS aliceEastwood,
	           director = 'W. Allen' SCORE recency(year, 2011) CONF 0.9 ON (movies, directors) AS bobAllen,
	           m_id = 1 SCORE 1 CONF 1 ON movies AS bobGranTorino
	USING sum
	THRESHOLD conf > 0
	`
	show(sess, "Q3 — social blending (Alice + Bob), all scored movies", q3)

	// The same query under every execution strategy returns the same answer;
	// the strategies differ only in cost profile.
	fmt.Println("Strategy cost profiles for Q1:")
	for _, mode := range prefdb.Modes() {
		res, err := sess.QueryContext(context.Background(), q1, prefdb.WithMode(mode))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-14s %v\n", mode, res.Stats)
	}
}

func show(sess prefdb.Session, title, sql string) {
	res, err := sess.ExecContext(context.Background(), sql)
	if err != nil {
		log.Fatalf("%s: %v", title, err)
	}
	fmt.Println(title)
	seen := map[string]bool{}
	for _, row := range res.Rel.Rows {
		key := row.Tuple[0].String()
		if seen[key] {
			continue // joins with cast may duplicate titles
		}
		seen[key] = true
		fmt.Printf("  %-22s %-14s score=%.3f conf=%.2f\n", row.Tuple[0], row.Tuple[1], row.SC.Score, row.SC.Conf)
	}
	fmt.Println()
}

// loadFig1 inserts the movie database of the paper's Fig. 3 plus a small
// cast so the actor preference has data to match.
func loadFig1(sess prefdb.Session) {
	stmts := []string{
		`CREATE TABLE movies (m_id INT, title TEXT, year INT, duration INT, d_id INT, PRIMARY KEY (m_id))`,
		`CREATE TABLE directors (d_id INT, director TEXT, PRIMARY KEY (d_id))`,
		`CREATE TABLE genres (m_id INT, genre TEXT, PRIMARY KEY (m_id, genre))`,
		`CREATE TABLE actors (a_id INT, actor TEXT, PRIMARY KEY (a_id))`,
		`CREATE TABLE cast (m_id INT, a_id INT, role TEXT, PRIMARY KEY (m_id, a_id))`,
		`INSERT INTO movies VALUES
			(1, 'Gran Torino', 2008, 116, 1),
			(2, 'Wall Street', 1987, 126, 3),
			(3, 'Million Dollar Baby', 2004, 132, 1),
			(4, 'Match Point', 2005, 124, 2),
			(5, 'Scoop', 2006, 96, 2)`,
		`INSERT INTO directors VALUES (1, 'C. Eastwood'), (2, 'W. Allen'), (3, 'O. Stone')`,
		`INSERT INTO genres VALUES (1, 'Drama'), (2, 'Drama'), (3, 'Drama'), (3, 'Sport'),
			(4, 'Thriller'), (4, 'Comedy'), (5, 'Comedy')`,
		`INSERT INTO actors VALUES (1, 'S. Johansson'), (2, 'C. Eastwood'), (3, 'H. Jackman')`,
		`INSERT INTO cast VALUES (4, 1, 'Nola'), (5, 1, 'Sondra'), (5, 3, 'Peter'),
			(1, 2, 'Walt'), (3, 2, 'Frankie'), (2, 3, 'Bud')`,
	}
	for _, s := range stmts {
		if _, err := sess.ExecContext(context.Background(), s); err != nil {
			log.Fatalf("%s: %v", s, err)
		}
	}
}
