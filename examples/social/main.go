// Social demonstrates blending preferences from several users into one
// query (the paper's Example 11) and how the choice of aggregate function
// F changes the blended ranking: F_S (confidence-weighted sum) rewards
// movies matching many preferences, while F_max trusts the single most
// confident preference.
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"prefdb"
)

func main() {
	db := prefdb.Open()
	if _, err := prefdb.LoadIMDB(db, prefdb.DatagenConfig{Scale: 0.05, Seed: 7}); err != nil {
		log.Fatal(err)
	}
	sess := prefdb.NewSession(db)
	defer sess.Close()

	// Alice's explicit preferences (confidence 1) and preferences the
	// system learnt for Bob (lower confidence).
	prefs := `
	PREFERRING genre = 'Comedy' SCORE 1 CONF 1 ON genres AS aliceComedies,
	           genre = 'Drama' SCORE 0.7 CONF 0.5 ON genres AS bobDramas,
	           year >= 2000 SCORE recency(year, 2011) CONF 0.6 ON movies AS bobRecent,
	           votes > 300 SCORE linear(rating, 0.1) CONF 0.8 ON ratings AS crowd`
	base := `
	SELECT title, year FROM movies
	JOIN genres ON movies.m_id = genres.m_id
	JOIN ratings ON movies.m_id = ratings.m_id
	` + prefs + `
	USING %s
	TOP 8 BY score`

	sum := top(sess, fmt.Sprintf(base, "sum"))
	max := top(sess, fmt.Sprintf(base, "max"))

	fmt.Println("Blended top-8 under F_S (confidence-weighted sum):")
	printList(sum)
	fmt.Println("\nBlended top-8 under F_max (most confident preference wins):")
	printList(max)

	overlap := 0
	inSum := map[string]bool{}
	for _, r := range sum {
		inSum[r.title] = true
	}
	for _, r := range max {
		if inSum[r.title] {
			overlap++
		}
	}
	fmt.Printf("\nOverlap between the two rankings: %d/%d\n", overlap, len(sum))

	// Serendipity knob (§III): low-confidence suggestions are results that
	// *may* be liked — keep weakly-supported but well-scored movies.
	serendip := `
	SELECT title FROM movies
	JOIN genres ON movies.m_id = genres.m_id
	JOIN ratings ON movies.m_id = ratings.m_id
	` + prefs + `
	USING sum
	THRESHOLD score >= 0.6`
	res, err := sess.ExecContext(context.Background(), serendip)
	if err != nil {
		log.Fatal(err)
	}
	low := 0
	for _, row := range res.Rel.Rows {
		if row.SC.Conf < 1 {
			low++
		}
	}
	fmt.Printf("Serendipitous candidates (score ≥ 0.6): %d total, %d with conf < 1\n", res.Rel.Len(), low)
}

type entry struct {
	title string
	score float64
	conf  float64
}

func top(sess prefdb.Session, sql string) []entry {
	res, err := sess.ExecContext(context.Background(), sql)
	if err != nil {
		log.Fatal(err)
	}
	var out []entry
	seen := map[string]bool{}
	for _, row := range res.Rel.Rows {
		t := row.Tuple[0].String()
		if seen[t] {
			continue
		}
		seen[t] = true
		out = append(out, entry{title: t, score: row.SC.Score, conf: row.SC.Conf})
	}
	return out
}

func printList(rows []entry) {
	for i, r := range rows {
		fmt.Printf("  %d. %-14s score=%.3f conf=%.2f\n", i+1, r.title, r.score, r.conf)
	}
	if len(rows) == 0 {
		fmt.Println("  " + strings.Repeat("-", 10))
	}
}
